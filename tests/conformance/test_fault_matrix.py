"""Fault-injection differential matrix: engines agree fault-for-fault.

The acceptance property for the fault axis: for every named fault profile,
every engine — with and without the job cache — produces results identical
to the reference engine running under *the same* profile.  Transient faults
must converge to identical successful outputs everywhere; fatal faults must
converge to the same failure class everywhere.  The heavier sweep runs in
the CI ``conformance-faults`` job; this keeps a deterministic tier-1 subset.
"""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.cwl.faults import fault_profiles
from repro.testing.conformance import main as conformance_main
from repro.testing.differential import run_case, run_generated

#: The two contrasting profiles the acceptance criterion requires: one that
#: recovers (retried to success) and one that exhausts (permanentFail).
PROFILES = ("transient-all", "fatal-all")


@pytest.fixture(autouse=True)
def _isolated_cwd(tmp_path, monkeypatch):
    """Parsl bash apps execute in the cwd; keep every test in its own."""
    monkeypatch.chdir(tmp_path)


def fault_configs(faults, engines=api.ENGINE_ORDER, cache_modes=("off",)):
    return api.matrix_configs(engines=engines, cache_modes=cache_modes,
                              compiled_modes=(None,), fault_modes=(faults,))


def outcome_for(corpus, case_id, configs, workdir):
    case = next(case for case in corpus if case.id == case_id)
    return run_case(case, configs, workdir)


@pytest.mark.parametrize("profile", PROFILES)
def test_fault_profile_has_zero_divergences_across_engines(
        profile, corpus, tmp_path):
    """All four engines agree with the faulted reference baseline."""
    outcome = outcome_for(corpus, "echo_stdout",
                          fault_configs(profile), tmp_path)
    assert outcome.passed, "\n".join(outcome.divergences)
    # echo_stdout is a bare tool, so the workflow-only bridge skips it.
    assert len(outcome.outcomes) + len(outcome.skipped) == len(api.ENGINE_ORDER)
    assert len(outcome.outcomes) >= 3
    expected_class = "success" if profile == "transient-all" else "permanentFail"
    for config_outcome in outcome.outcomes:
        assert config_outcome.run.exit_class == expected_class, \
            config_outcome.run.config.label


@pytest.mark.parametrize("profile", PROFILES)
def test_fault_profile_agrees_on_a_generated_workflow(
        profile, generated_suite, tmp_path):
    """A multi-step generated DAG also agrees under injected faults."""
    outcome = run_generated(generated_suite[0], fault_configs(profile),
                            tmp_path)
    assert outcome.passed, "\n".join(outcome.divergences)


def test_faulted_and_unfaulted_configs_share_one_matrix(corpus, tmp_path):
    """Mixed fault axis: each config is judged against its own baseline."""
    configs = api.matrix_configs(engines=("reference", "toil"),
                                 cache_modes=("off",),
                                 fault_modes=(None, "transient-all"))
    outcome = outcome_for(corpus, "echo_stdout", configs, tmp_path)
    assert outcome.passed, "\n".join(outcome.divergences)
    labels = {c.run.config.label for c in outcome.outcomes}
    assert any("faults=transient-all" in label for label in labels)
    assert any("faults" not in label for label in labels)


def test_fault_axis_survives_the_job_cache(corpus, tmp_path):
    """cache=warm under faults: the replayed leg matches the faulted oracle."""
    configs = fault_configs("transient-all", engines=("reference", "toil"),
                            cache_modes=("warm",))
    outcome = outcome_for(corpus, "echo_stdout", configs, tmp_path)
    assert outcome.passed, "\n".join(outcome.divergences)
    # The faulted cache=off oracle rides along; only warm legs must hit.
    warm = [c for c in outcome.outcomes if c.run.config.cache == "warm"]
    assert warm
    for config_outcome in warm:
        assert config_outcome.run.cache_hits() > 0, \
            config_outcome.run.config.label


def test_flaky_half_profile_selects_deterministically(corpus, tmp_path):
    """The probabilistic profile is seeded: two sweeps, identical verdicts."""
    configs = fault_configs("flaky-half", engines=("reference", "toil"))
    first = outcome_for(corpus, "echo_stdout", configs, tmp_path / "a")
    second = outcome_for(corpus, "echo_stdout", configs, tmp_path / "b")
    assert first.passed and second.passed
    assert [c.run.exit_class for c in first.outcomes] == \
        [c.run.exit_class for c in second.outcomes]


def test_conformance_cli_runs_the_fault_axis(tmp_path):
    """``--faults`` end to end: report records the profiles and 0 divergences."""
    report_path = tmp_path / "CONFORMANCE_FAULTS.json"
    rc = conformance_main([
        "--case", "echo_stdout", "--engine", "reference", "--engine", "toil",
        "--cache", "off", "--compiled", "default",
        "--faults", "transient-all", "--generated", "0", "--quiet",
        "--report", str(report_path), "--workdir", str(tmp_path / "work"),
    ])
    assert rc == 0
    report = json.loads(report_path.read_text())
    assert report["summary"]["divergences"] == 0
    assert report["meta"]["faults"] == ["transient-all"]


def test_conformance_cli_rejects_unknown_fault_profile(tmp_path):
    with pytest.raises(SystemExit):
        conformance_main(["--faults", "no-such-profile", "--generated", "0",
                          "--quiet", "--report", str(tmp_path / "C.json")])


def test_every_registered_profile_is_well_formed():
    for name, profile in fault_profiles().items():
        assert profile.name == name
        assert profile.description
        assert profile.make_plan().specs
        assert profile.policy.max_attempts >= 2
