"""Differential execution: the tier-1 conformance subset, in-process.

The full matrix (4 engines × 3 cache modes × 2 expression pipelines over the
whole corpus plus 20 generated workflows) runs in the CI ``conformance`` job
via ``python -m repro.testing.conformance``; this module keeps a fast,
deterministic subset in tier-1 so an engine divergence fails `pytest` before
it ever reaches CI.
"""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.testing.conformance import main as conformance_main
from repro.testing.differential import deep_compare, run_case, run_generated
from repro.testing.report import build_report, write_report


@pytest.fixture(autouse=True)
def _isolated_cwd(tmp_path, monkeypatch):
    """Parsl bash apps execute in the cwd; keep every test in its own."""
    monkeypatch.chdir(tmp_path)


def _tier1_configs():
    """Engines at their default expression pipeline, cache off."""
    return api.matrix_configs(cache_modes=("off",), compiled_modes=(None,))


def test_tier1_corpus_has_zero_divergences(tier1_corpus, tmp_path):
    """Every tier-1 case agrees with the reference engine on all engines."""
    assert tier1_corpus
    failures = []
    for case in tier1_corpus:
        outcome = run_case(case, _tier1_configs(), tmp_path / case.id)
        failures.extend(f"{case.id} :: {line}" for line in outcome.divergences)
    assert not failures, "\n".join(failures)


def test_generated_workflows_have_zero_divergences(generated_suite, tmp_path):
    """Generated DAGs agree across all four engines (reference as oracle)."""
    for workflow in generated_suite[:2]:
        outcome = run_generated(workflow, _tier1_configs(), tmp_path / workflow.id)
        assert outcome.passed, "\n".join(outcome.divergences)
        # the reference baseline plus the three other engines all ran
        assert len(outcome.outcomes) == 4


def test_warm_cache_conforms_on_every_engine(corpus, tmp_path):
    """cache=warm replays bit-identical results on each engine."""
    case = next(case for case in corpus if case.id == "wf_scatter_dotproduct")
    configs = api.matrix_configs(cache_modes=("warm",), compiled_modes=(None,))
    outcome = run_case(case, configs, tmp_path)
    assert outcome.passed, "\n".join(outcome.divergences)
    warm_runs = [config_outcome.run for config_outcome in outcome.outcomes
                 if config_outcome.run.config.cache == "warm"]
    assert warm_runs
    # the runner engines observably replay from the store on the warm leg
    for run in warm_runs:
        if run.config.engine in ("reference", "toil"):
            assert run.cache_hits() > 0, run.config.label


def test_compiled_and_uncompiled_agree(corpus, tmp_path):
    """The compiled-expression axis changes timing only, never outputs."""
    case = next(case for case in corpus if case.id == "expression_lib_capitalize")
    configs = api.matrix_configs(engines=("toil", "parsl"),
                                 cache_modes=("off",),
                                 compiled_modes=(True, False))
    outcome = run_case(case, configs, tmp_path)
    assert outcome.passed, "\n".join(outcome.divergences)


def test_should_fail_case_fails_identically(corpus, tmp_path):
    case = next(case for case in corpus if case.id == "fail_permanent_exit")
    outcome = run_case(case, _tier1_configs(), tmp_path)
    assert outcome.passed, "\n".join(outcome.divergences)
    for config_outcome in outcome.outcomes:
        assert config_outcome.run.exit_class == "permanentFail"


def test_report_shape_and_write(tier1_corpus, tmp_path):
    case = tier1_corpus[0]
    configs = api.matrix_configs(engines=("reference", "toil"),
                                 cache_modes=("off",))
    outcome = run_case(case, configs, tmp_path / "runs")
    report = build_report([outcome], configs, meta={"tier1": True})
    path = write_report(tmp_path / "CONFORMANCE.json", report)

    loaded = json.loads(open(path).read())
    assert loaded["version"] == 1
    assert loaded["summary"]["cases"] == 1
    assert loaded["summary"]["divergences"] == 0
    assert case.id in loaded["cases"]
    assert loaded["cases"][case.id]["runs"]
    assert loaded["meta"]["tier1"] is True


def test_conformance_cli_tier1_single_case(tmp_path):
    """The module CLI runs end to end and writes the report."""
    report_path = tmp_path / "CONFORMANCE.json"
    rc = conformance_main([
        "--case", "echo_stdout", "--cache", "off", "--compiled", "default",
        "--generated", "0", "--quiet", "--report", str(report_path),
        "--workdir", str(tmp_path / "work"),
    ])
    assert rc == 0
    report = json.loads(report_path.read_text())
    assert report["summary"] == {
        "cases": 1, "corpus_cases": 1, "generated_cases": 0,
        "runs": 3, "passed_cases": 1, "failed_cases": 0, "divergences": 0,
    }


def test_conformance_cli_rejects_unknown_case(tmp_path):
    rc = conformance_main(["--case", "no_such_case", "--generated", "0",
                           "--quiet", "--report", str(tmp_path / "C.json")])
    assert rc == 2


def test_deep_compare_reports_the_first_difference():
    assert deep_compare({"a": 1}, {"a": 1}) is None
    assert "$.a" in deep_compare({"a": 1}, {"a": 2})
    assert "length" in deep_compare([1, 2], [1])
    assert "missing key" in deep_compare({"a": 1, "b": 2}, {"a": 1})
    assert "unexpected key" in deep_compare({"a": 1}, {"a": 1, "b": 2})
