"""The unsupported-path error contract (previously noted, never asserted).

Scattering over a nested Workflow is supported by the runner engines but is
a declared unsupported path on the Parsl bridge: both Parsl engines must
raise :class:`UnsupportedRequirement` — not a generic failure — and the
message must name the offending step, identically on both engines.
"""

from __future__ import annotations

import pytest

import repro
from repro import api
from repro.cwl.errors import UnsupportedRequirement, error_class, exit_class
from repro.testing.corpus import load_corpus, materialize_job_order

PARSL_ENGINES = ("parsl", "parsl-workflow")


@pytest.fixture
def scattered_subworkflow_case():
    """The corpus case is the single source of truth for this contract."""
    corpus = load_corpus()
    return next(case for case in corpus if case.id == "wf_scattered_subworkflow")


@pytest.fixture
def run_engine(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)

    def run(engine, process, job_order):
        options = {}
        if engine in PARSL_ENGINES:
            options["config"] = repro.thread_config(
                max_threads=2, run_dir=str(tmp_path / engine / "runinfo"))
        return api.run(process, dict(job_order), engine=engine, **options)

    return run


def test_runner_engines_run_scattered_subworkflows(
        scattered_subworkflow_case, run_engine, tmp_path):
    case = scattered_subworkflow_case
    job = materialize_job_order(case.job, tmp_path / "inputs")
    for engine in ("reference", "toil"):
        result = run_engine(engine, case.process, job)
        assert [value["basename"] for value in result.outputs["files"]] == \
            ["sub0.txt", "sub1.txt"]


@pytest.mark.parametrize("engine", PARSL_ENGINES)
def test_parsl_engines_raise_unsupported_with_step_name(
        scattered_subworkflow_case, run_engine, tmp_path, engine):
    case = scattered_subworkflow_case
    job = materialize_job_order(case.job, tmp_path / "inputs")
    with pytest.raises(UnsupportedRequirement) as excinfo:
        run_engine(engine, case.process, job)
    message = str(excinfo.value)
    assert "'shatter'" in message, "the step name must be in the error"
    assert "nested Workflow" in message
    assert error_class(excinfo.value) == "UnsupportedRequirement"
    assert exit_class(excinfo.value) == "unsupported"


def test_both_parsl_engines_raise_the_same_message(
        scattered_subworkflow_case, run_engine, tmp_path):
    case = scattered_subworkflow_case
    job = materialize_job_order(case.job, tmp_path / "inputs")
    messages = {}
    for engine in PARSL_ENGINES:
        with pytest.raises(UnsupportedRequirement) as excinfo:
            run_engine(engine, case.process, job)
        messages[engine] = str(excinfo.value)
    assert messages["parsl"] == messages["parsl-workflow"]


def test_scatter_over_future_width_is_unsupported_with_step_name(tmp_path, monkeypatch):
    """The bridge's other declared unsupported path: scattering over a value
    that is still a future at submission time."""
    monkeypatch.chdir(tmp_path)
    from repro.core.workflow_bridge import CWLWorkflowBridge
    from repro.cwl.loader import load_document

    echo_list_tool = {
        "class": "CommandLineTool",
        "requirements": [{"class": "InlineJavascriptRequirement"}],
        "baseCommand": "echo",
        "inputs": {"text": {"type": "string", "inputBinding": {"position": 1}}},
        "outputs": {"out": {"type": "stdout"}},
        "stdout": "list.txt",
    }
    workflow = {
        "cwlVersion": "v1.2", "class": "Workflow",
        "requirements": [{"class": "ScatterFeatureRequirement"}],
        "inputs": {"text": "string"},
        "outputs": {"files": {"type": "Any", "outputSource": "use/out"}},
        "steps": {
            "produce": {"run": dict(echo_list_tool), "in": {"text": "text"},
                        "out": ["out"]},
            "use": {"run": dict(echo_list_tool), "scatter": ["text"],
                    "in": {"text": "produce/out"},
                    "out": ["out"]},
        },
    }
    repro.load(repro.thread_config(max_threads=2, run_dir=str(tmp_path / "runinfo")))
    try:
        bridge = CWLWorkflowBridge(load_document(workflow))
        with pytest.raises(UnsupportedRequirement) as excinfo:
            bridge.run({"text": "seed"})
        assert "'use'" in str(excinfo.value)
    finally:
        repro.clear()
