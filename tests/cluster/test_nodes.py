"""Tests for the simulated cluster node inventory."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cluster.nodes import Node, NodeInventory


def test_node_defaults_match_paper_cluster():
    node = Node(name="node01")
    assert node.cores == 48
    assert node.memory_mb == 126 * 1024
    assert node.free_cores == 48


def test_node_can_fit():
    node = Node(name="n", cores=4, memory_mb=100)
    assert node.can_fit(4, 100)
    assert not node.can_fit(5)
    node.allocated_cores = 2
    assert node.can_fit(2)
    assert not node.can_fit(3)


def test_homogeneous_inventory():
    inventory = NodeInventory.homogeneous(3, cores=48)
    assert len(inventory) == 3
    assert inventory.total_cores == 144
    assert [n.name for n in inventory.nodes()] == ["node01", "node02", "node03"]


def test_duplicate_node_names_rejected():
    inventory = NodeInventory([Node("a")])
    with pytest.raises(ValueError):
        inventory.add_node(Node("a"))


def test_try_allocate_and_release():
    inventory = NodeInventory.homogeneous(2, cores=4)
    placement = inventory.try_allocate(nodes_required=2, cores_per_node=3)
    assert placement is not None and len(placement) == 2
    assert inventory.free_cores == 2
    # A second 2-node x 3-core request cannot fit.
    assert inventory.try_allocate(2, 3) is None
    # But a 1-node x 1-core request can (backfill).
    assert inventory.try_allocate(1, 1) is not None
    inventory.release(placement, cores_per_node=3)
    assert inventory.free_cores == 8 - 1


def test_try_allocate_insufficient_nodes():
    inventory = NodeInventory.homogeneous(1, cores=8)
    assert inventory.try_allocate(nodes_required=2, cores_per_node=1) is None


def test_release_unknown_node_is_ignored():
    inventory = NodeInventory.homogeneous(1, cores=8)
    inventory.release(["ghost"], cores_per_node=4)
    assert inventory.free_cores == 8


def test_release_never_goes_negative():
    inventory = NodeInventory.homogeneous(1, cores=8)
    inventory.release(["node01"], cores_per_node=100)
    assert inventory["node01"].allocated_cores == 0


@given(
    nodes=st.integers(min_value=1, max_value=5),
    cores=st.integers(min_value=1, max_value=16),
    requests=st.lists(st.tuples(st.integers(1, 3), st.integers(1, 8)), max_size=10),
)
def test_allocation_invariant_never_oversubscribes(nodes, cores, requests):
    """Property: allocations never exceed each node's core count."""
    inventory = NodeInventory.homogeneous(nodes, cores=cores)
    placements = []
    for nodes_required, cores_per_node in requests:
        result = inventory.try_allocate(nodes_required, cores_per_node)
        if result is not None:
            placements.append((result, cores_per_node))
        for node in inventory.nodes():
            assert 0 <= node.allocated_cores <= node.cores
    for names, cores_per_node in placements:
        inventory.release(names, cores_per_node)
    assert inventory.free_cores == inventory.total_cores
