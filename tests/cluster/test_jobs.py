"""Tests for cluster job specifications and records."""

from __future__ import annotations

import pytest

from repro.cluster.jobs import ClusterJob, JobSpec, JobState


def test_jobspec_requires_exactly_one_payload():
    with pytest.raises(ValueError):
        JobSpec(name="none").validate()
    with pytest.raises(ValueError):
        JobSpec(name="both", command="true", callable_payload=lambda: None).validate()
    JobSpec(name="cmd", command="true").validate()
    JobSpec(name="call", callable_payload=lambda: 1).validate()


@pytest.mark.parametrize("field,value", [
    ("nodes", 0),
    ("cores_per_node", 0),
    ("memory_mb_per_node", -1),
    ("walltime_s", 0),
])
def test_jobspec_rejects_bad_resources(field, value):
    spec = JobSpec(name="bad", command="true", **{field: value})
    with pytest.raises(ValueError):
        spec.validate()


def test_job_state_terminality():
    assert JobState.COMPLETED.is_terminal
    assert JobState.FAILED.is_terminal
    assert JobState.CANCELLED.is_terminal
    assert JobState.TIMEOUT.is_terminal
    assert not JobState.PENDING.is_terminal
    assert not JobState.RUNNING.is_terminal


def test_cluster_job_lifecycle_timing():
    job = ClusterJob(job_id=1, spec=JobSpec(name="x", command="true"))
    assert job.state == JobState.PENDING
    job.mark_running(["node01"])
    assert job.state == JobState.RUNNING
    assert job.assigned_nodes == ["node01"]
    job.mark_finished(JobState.COMPLETED, exit_code=0, result="done")
    assert job.state == JobState.COMPLETED
    assert job.result == "done"
    assert job.wait(timeout=0.1) is True
    assert job.pending_seconds >= 0
    assert job.runtime_seconds >= 0


def test_cluster_job_wait_times_out_when_not_finished():
    job = ClusterJob(job_id=2, spec=JobSpec(name="x", command="true"))
    assert job.wait(timeout=0.01) is False
