"""Tests for the simulated Slurm scheduler."""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.cluster.jobs import JobSpec, JobState
from repro.cluster.nodes import NodeInventory
from repro.cluster.scheduler import SimulatedSlurmCluster, default_cluster, reset_default_cluster


@pytest.fixture
def cluster():
    cluster = SimulatedSlurmCluster(NodeInventory.homogeneous(2, cores=4))
    yield cluster
    cluster.shutdown()


def test_callable_job_completes(cluster):
    job_id = cluster.sbatch(JobSpec(name="calc", callable_payload=lambda: 21 * 2))
    job = cluster.wait(job_id, timeout=10)
    assert job.state == JobState.COMPLETED
    assert job.result == 42
    assert len(job.assigned_nodes) == 1  # record of where the job ran is kept
    assert cluster.inventory.free_cores == cluster.inventory.total_cores  # cores released


def test_command_job_writes_stdout(cluster, tmp_path):
    out = tmp_path / "out.txt"
    job_id = cluster.sbatch(JobSpec(name="echo", command="echo simulated-slurm",
                                    stdout_path=str(out)))
    job = cluster.wait(job_id, timeout=10)
    assert job.state == JobState.COMPLETED
    assert job.exit_code == 0
    assert out.read_text().strip() == "simulated-slurm"


def test_command_job_exposes_slurm_env(cluster, tmp_path):
    out = tmp_path / "env.txt"
    job_id = cluster.sbatch(JobSpec(name="env", command="echo $SLURM_JOB_NODELIST",
                                    stdout_path=str(out), nodes=2, cores_per_node=1))
    cluster.wait(job_id, timeout=10)
    nodelist = out.read_text().strip()
    assert "node01" in nodelist and "node02" in nodelist


def test_failed_command_job(cluster):
    job_id = cluster.sbatch(JobSpec(name="fail", command="exit 3"))
    job = cluster.wait(job_id, timeout=10)
    assert job.state == JobState.FAILED
    assert job.exit_code == 3


def test_failing_callable_marks_job_failed(cluster):
    def boom():
        raise RuntimeError("kaboom")

    job_id = cluster.sbatch(JobSpec(name="boom", callable_payload=boom))
    job = cluster.wait(job_id, timeout=10)
    assert job.state == JobState.FAILED
    assert "kaboom" in (job.error or "")


def test_walltime_enforcement(cluster):
    job_id = cluster.sbatch(JobSpec(name="slow", command="sleep 5", walltime_s=0.2))
    job = cluster.wait(job_id, timeout=15)
    assert job.state == JobState.TIMEOUT


def test_jobs_queue_when_cluster_full(cluster):
    """A job larger than the free capacity stays PENDING until space frees up."""
    release = threading.Event()

    def hold():
        release.wait()
        return "held"

    hold_id = cluster.sbatch(JobSpec(name="hold", callable_payload=hold,
                                     nodes=2, cores_per_node=4))
    time.sleep(0.1)
    assert cluster.sacct(hold_id).state == JobState.RUNNING

    queued_id = cluster.sbatch(JobSpec(name="queued", callable_payload=lambda: "ran",
                                       nodes=1, cores_per_node=4))
    time.sleep(0.15)
    assert cluster.sacct(queued_id).state == JobState.PENDING
    assert cluster.utilisation() == 1.0

    release.set()
    job = cluster.wait(queued_id, timeout=10)
    assert job.state == JobState.COMPLETED
    assert job.result == "ran"


def test_scancel_pending_job(cluster):
    release = threading.Event()
    hold_id = cluster.sbatch(JobSpec(name="hold", callable_payload=release.wait,
                                     nodes=2, cores_per_node=4))
    queued_id = cluster.sbatch(JobSpec(name="queued", callable_payload=lambda: 1,
                                       nodes=1, cores_per_node=4))
    time.sleep(0.1)
    assert cluster.scancel(queued_id) is True
    assert cluster.sacct(queued_id).state == JobState.CANCELLED
    release.set()
    cluster.wait(hold_id, timeout=10)
    # Cancelling an already-terminal job returns False.
    assert cluster.scancel(queued_id) is False


def test_squeue_reports_only_live_jobs(cluster):
    job_id = cluster.sbatch(JobSpec(name="quick", callable_payload=lambda: 1))
    cluster.wait(job_id, timeout=10)
    assert all(j.job_id != job_id for j in cluster.squeue())


def test_sbatch_rejects_invalid_spec(cluster):
    with pytest.raises(ValueError):
        cluster.sbatch(JobSpec(name="bad"))


def test_sbatch_after_shutdown_raises():
    cluster = SimulatedSlurmCluster(NodeInventory.homogeneous(1, cores=2))
    cluster.shutdown()
    with pytest.raises(RuntimeError):
        cluster.sbatch(JobSpec(name="late", callable_payload=lambda: 1))


def test_many_small_jobs_all_complete(cluster):
    job_ids = [cluster.sbatch(JobSpec(name=f"j{i}", callable_payload=(lambda i=i: i * i)))
               for i in range(20)]
    results = [cluster.wait(job_id, timeout=20).result for job_id in job_ids]
    assert results == [i * i for i in range(20)]
    states = cluster.job_states()
    assert all(states[j] == JobState.COMPLETED for j in job_ids)


def test_default_cluster_is_shared_and_resettable():
    reset_default_cluster()
    first = default_cluster(nodes=2, cores_per_node=4)
    assert default_cluster() is first
    reset_default_cluster()
    second = default_cluster(nodes=2, cores_per_node=4)
    assert second is not first
    reset_default_cluster()
