"""Shared pytest fixtures.

The fixtures here manage the two pieces of process-global state the library
has — the loaded Parsl DataFlowKernel and the shared simulated cluster — and
provide convenient paths to the example CWL documents and configurations.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

import repro
from repro.cluster.scheduler import reset_default_cluster
from repro.parsl.dataflow.dflow import DataFlowKernelLoader

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
CWL_DIR = EXAMPLES_DIR / "cwl"
CONFIG_DIR = EXAMPLES_DIR / "configs"


@pytest.fixture(scope="session")
def repo_root() -> Path:
    return REPO_ROOT


@pytest.fixture(scope="session")
def cwl_dir() -> Path:
    return CWL_DIR


@pytest.fixture(scope="session")
def config_dir() -> Path:
    return CONFIG_DIR


@pytest.fixture(autouse=True)
def _clean_global_state():
    """Guarantee no DataFlowKernel or default cluster leaks between tests."""
    yield
    try:
        DataFlowKernelLoader.clear()
    except Exception:
        pass
    try:
        reset_default_cluster()
    except Exception:
        pass


@pytest.fixture
def parsl_threads(tmp_path, monkeypatch):
    """A loaded thread-pool DataFlowKernel whose run dir and cwd are temporary."""
    monkeypatch.chdir(tmp_path)
    dfk = repro.load(repro.thread_config(max_threads=4, run_dir=str(tmp_path / "runinfo")))
    yield dfk
    repro.clear()


@pytest.fixture
def parsl_htex_local(tmp_path, monkeypatch):
    """A loaded local HighThroughputExecutor DataFlowKernel (2 workers)."""
    from repro.parsl.configs import htex_local_config

    monkeypatch.chdir(tmp_path)
    dfk = repro.load(htex_local_config(workers=2, run_dir=str(tmp_path / "runinfo")))
    yield dfk
    repro.clear()


@pytest.fixture
def small_image(tmp_path):
    """One small synthetic PNG on disk."""
    from repro.imaging.synthetic import generate_image
    from repro.imaging.png import write_png

    path = tmp_path / "input.png"
    write_png(path, generate_image(width=48, height=32, seed=7))
    return str(path)


@pytest.fixture
def image_batch(tmp_path):
    """A small batch of synthetic PNGs on disk."""
    from repro.imaging.synthetic import generate_image_files

    return generate_image_files(tmp_path / "batch", 4, width=48, height=32)
