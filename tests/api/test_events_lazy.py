"""Lazy JobEvent emission (repro.api.events.EventRecorder).

Without hooks the recorder's hot path appends compact tuples and defers
``JobEvent`` construction to the ``.events`` property; with hooks the event
object is built eagerly (the callback needs it) and reused.  Either way the
materialised stream is identical.
"""

from __future__ import annotations

from repro.api.events import EventRecorder, ExecutionHooks, JobEvent


def drive(recorder: EventRecorder) -> None:
    token = recorder.job_started("alpha")
    recorder.job_retry(token, 1, error="flake", delay_s=0.01)
    recorder.job_finished(token, cache="miss", attempt=2)
    token = recorder.job_started("beta")
    recorder.job_finished(token, ok=False, error="boom")


def shape(events) -> list:
    return [(e.job, e.kind, e.ok, e.error, e.cache, e.attempt) for e in events]


def test_hookless_recorder_defers_event_construction():
    recorder = EventRecorder(hooks=None)
    drive(recorder)
    assert not any(isinstance(r, JobEvent) for r in recorder._records)
    events = recorder.events
    assert all(isinstance(e, JobEvent) for e in events)
    assert shape(events) == [
        ("alpha", "start", True, None, None, 1),
        ("alpha", "retry", False, "flake", None, 1),
        ("alpha", "end", True, None, "miss", 2),
        ("beta", "start", True, None, None, 1),
        ("beta", "end", False, "boom", None, 1),
    ]
    assert events[2].duration_s is not None and events[2].duration_s >= 0
    assert events[1].duration_s == 0.01  # retry events carry the backoff


def test_hooked_recorder_matches_lazy_stream_and_fires_callbacks():
    seen = []
    hooks = ExecutionHooks(on_job_start=lambda e: seen.append(("start", e.job)),
                           on_job_end=lambda e: seen.append(("end", e.job)),
                           on_job_retry=lambda e: seen.append(("retry", e.job)))
    hooked = EventRecorder(hooks=hooks)
    drive(hooked)
    lazy = EventRecorder(hooks=None)
    drive(lazy)
    assert shape(hooked.events) == shape(lazy.events)
    assert seen == [("start", "alpha"), ("retry", "alpha"), ("end", "alpha"),
                    ("start", "beta"), ("end", "beta")]


def test_partial_hooks_only_materialize_their_kind():
    hooks = ExecutionHooks(on_job_end=lambda e: None)  # no start/retry hooks
    recorder = EventRecorder(hooks=hooks)
    drive(recorder)
    eager = [r for r in recorder._records if isinstance(r, JobEvent)]
    assert len(eager) == 2 and all(e.kind == "end" for e in eager)
    assert len(recorder.events) == 5
