"""Tests for the unified execution API: registry, Session, results, events."""

from __future__ import annotations

import pytest

import repro
from repro import api
from repro.api.engine import EngineError, UnknownEngineError, _REGISTRY
from repro.cwl.runtime import RuntimeContext


# ----------------------------------------------------------------- registry


def test_builtin_engines_registered():
    assert {"reference", "toil", "parsl", "parsl-workflow"} <= set(api.list_engines())


def test_aliases_resolve_to_canonical_names():
    assert api.resolve_engine_name("cwltool") == "reference"
    assert api.resolve_engine_name("toil-like") == "toil"
    assert api.resolve_engine_name("parsl-cwl") == "parsl"
    assert api.resolve_engine_name("bridge") == "parsl-workflow"
    assert api.resolve_engine_name("Reference") == "reference"


def test_unknown_engine_rejected():
    with pytest.raises(UnknownEngineError, match="registered engines"):
        api.get_engine("quantum")


def test_duplicate_registration_rejected_unless_replaced():
    factory = _REGISTRY["reference"]
    with pytest.raises(ValueError, match="already registered"):
        api.register_engine("reference", factory)
    api.register_engine("reference", factory, replace=True)  # restores itself


def test_custom_engine_runs_through_session():
    class EchoEngine(api.Engine):
        def execute(self, process, job_order, hooks=None):
            return api.ExecutionResult(outputs=dict(job_order), engine=self.name)

    api.register_engine("echo-test", EchoEngine)
    try:
        result = api.run({"ignored": True}, {"x": 1}, engine="echo-test")
        assert result.outputs == {"x": 1}
        assert result.engine == "echo-test"
    finally:
        _REGISTRY.pop("echo-test")


# ------------------------------------------------------------------ session


def test_session_runs_many_orders_through_one_engine(cwl_dir, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with api.Session(engine="reference",
                     runtime_context=RuntimeContext(basedir=str(tmp_path))) as session:
        for index in range(3):
            result = session.run(str(cwl_dir / "echo.cwl"), {"message": f"run {index}"})
            assert result.status == "success"
    with pytest.raises(RuntimeError, match="closed"):
        session.run(str(cwl_dir / "echo.cwl"), {})


def test_session_submit_is_asynchronous(cwl_dir, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with api.Session(engine="reference",
                     runtime_context=RuntimeContext(basedir=str(tmp_path))) as session:
        handles = [session.submit(str(cwl_dir / "echo.cwl"), {"message": f"async {i}"})
                   for i in range(3)]
        results = [handle.result(timeout=60) for handle in handles]
    assert all(r.outputs["output"]["basename"] == "hello.txt" for r in results)
    assert all(handle.done() for handle in handles)


def test_session_rejects_options_with_engine_instance():
    engine = api.get_engine("reference")
    with pytest.raises(ValueError, match="engine options"):
        api.Session(engine=engine, parallel=True)
    engine.close()


def test_submit_helper_closes_its_session(cwl_dir, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    handle = api.submit(str(cwl_dir / "echo.cwl"), {"message": "one shot"},
                        engine="reference",
                        runtime_context=RuntimeContext(basedir=str(tmp_path)))
    assert handle.result(timeout=60).jobs_run == 1


# ------------------------------------------------------------ result shape


def test_execution_result_events_and_indexing(cwl_dir, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    seen = []
    hooks = api.ExecutionHooks(on_job_start=lambda e: seen.append(("start", e.job)),
                               on_job_end=lambda e: seen.append(("end", e.ok)))
    result = api.run(str(cwl_dir / "echo.cwl"), {"message": "events"},
                     engine="reference", hooks=hooks,
                     runtime_context=RuntimeContext(basedir=str(tmp_path)))
    assert seen == [("start", "echo"), ("end", True)]
    assert result.job_names() == ["echo"]
    assert result["output"]["basename"] == "hello.txt"
    end_events = [e for e in result.events if e.kind == "end"]
    assert end_events[0].duration_s > 0
    assert "engine=reference" in result.summary()


def test_failed_job_reports_end_event_and_raises(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    failing = {"cwlVersion": "v1.2", "class": "CommandLineTool",
               "baseCommand": "false", "inputs": {}, "outputs": {}}
    seen = []
    hooks = api.ExecutionHooks(on_job_end=lambda e: seen.append((e.ok, e.error)))
    with pytest.raises(Exception):
        api.run(failing, {}, engine="reference", hooks=hooks,
                runtime_context=RuntimeContext(basedir=str(tmp_path)))
    assert seen and seen[0][0] is False
    assert "exit code" in seen[0][1]


def test_toil_engine_exposes_job_store_stats(cwl_dir, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    result = api.run(str(cwl_dir / "echo.cwl"), {"message": "stats"}, engine="toil",
                     job_store_dir=str(tmp_path / "jobstore"),
                     runtime_context=RuntimeContext(basedir=str(tmp_path)),
                     destroy_job_store_on_close=True)
    assert result.details["job_store"].get("done") == 1


def test_parsl_workflow_engine_rejects_tools(cwl_dir, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with pytest.raises(EngineError, match="complete CWL Workflows"):
        api.run(str(cwl_dir / "echo.cwl"), {"message": "x"}, engine="parsl-workflow",
                config=repro.thread_config(max_threads=2,
                                           run_dir=str(tmp_path / "runinfo")))


def test_concurrent_submits_on_one_toil_session(cwl_dir, tmp_path, monkeypatch):
    """Runner engines serialise concurrent submits without crossing state."""
    monkeypatch.chdir(tmp_path)
    with api.Session(engine="toil", job_store_dir=str(tmp_path / "jobstore"),
                     runtime_context=RuntimeContext(basedir=str(tmp_path)),
                     destroy_job_store_on_close=True) as session:
        handles = [session.submit(str(cwl_dir / "echo.cwl"), {"message": f"c{i}"})
                   for i in range(4)]
        results = [handle.result(timeout=120) for handle in handles]
    for result in results:
        assert result.jobs_run == 1
        assert [e.kind for e in result.events] == ["start", "end"]


def test_workflow_end_events_present_when_run_returns(cwl_dir, small_image, tmp_path,
                                                      monkeypatch):
    """Bridge end events land before api.run returns (no late callbacks)."""
    monkeypatch.chdir(tmp_path)
    result = api.run(str(cwl_dir / "image_pipeline.cwl"),
                     {"input_image": {"class": "File", "path": small_image},
                      "size": 12, "sepia": False, "radius": 1},
                     engine="parsl-workflow",
                     config=repro.thread_config(max_threads=4,
                                                run_dir=str(tmp_path / "runinfo")))
    kinds = [e.kind for e in result.events]
    assert kinds.count("start") == 3 and kinds.count("end") == 3
    assert all(e.duration_s is not None for e in result.events if e.kind == "end")


# ---------------------------------------------------- CLI routes through API


def test_cwltool_cli_routes_through_registry(cwl_dir, tmp_path, capsys):
    from repro.api.engines import ReferenceEngine
    from repro.cwl.cli import cwltool_main

    instantiated = []

    def spy_factory(**options):
        engine = ReferenceEngine(**options)
        instantiated.append(engine)
        return engine

    api.register_engine("reference", spy_factory, replace=True)
    try:
        exit_code = cwltool_main(["--outdir", str(tmp_path), "--quiet",
                                  str(cwl_dir / "echo.cwl"), "--message", "spied"])
    finally:
        api.register_engine("reference", ReferenceEngine, replace=True)
    assert exit_code == 0
    assert len(instantiated) == 1
    capsys.readouterr()


def test_parsl_cli_routes_through_registry(cwl_dir, config_dir, tmp_path, capsys):
    from repro.api.engines import ParslEngine
    from repro.core.cli import main as parsl_cwl_main

    instantiated = []

    def spy_factory(**options):
        engine = ParslEngine(**options)
        instantiated.append(engine)
        return engine

    api.register_engine("parsl", spy_factory, replace=True)
    try:
        exit_code = parsl_cwl_main(["--outdir", str(tmp_path), "--quiet",
                                    str(config_dir / "local_threads.yml"),
                                    str(cwl_dir / "echo.cwl"), "--message", "spied"])
    finally:
        api.register_engine("parsl", ParslEngine, replace=True)
    assert exit_code == 0
    assert len(instantiated) == 1
    capsys.readouterr()


# ------------------------------------------------- ResourceRequirement runtime


RUNTIME_TOOL = {
    "cwlVersion": "v1.2",
    "class": "CommandLineTool",
    "baseCommand": "echo",
    "requirements": [{"class": "ResourceRequirement", "coresMin": 3, "ramMin": 2048}],
    "inputs": {},
    "arguments": ["$(runtime.cores)", "$(runtime.ram)"],
    "outputs": {"out": "stdout"},
    "stdout": "resources.txt",
}


@pytest.mark.parametrize("engine", ["reference", "toil", "parsl"])
def test_runtime_expressions_see_resource_requirement(engine, tmp_path, monkeypatch):
    """$(runtime.cores) / $(runtime.ram) honour ResourceRequirement on every path."""
    monkeypatch.chdir(tmp_path)
    options = {}
    if engine in ("reference", "toil"):
        options["runtime_context"] = RuntimeContext(basedir=str(tmp_path))
    if engine == "toil":
        options["job_store_dir"] = str(tmp_path / "jobstore")
        options["destroy_job_store_on_close"] = True
    if engine == "parsl":
        options["config"] = repro.thread_config(max_threads=2,
                                                run_dir=str(tmp_path / "runinfo"))
    result = api.run(dict(RUNTIME_TOOL), {}, engine=engine, **options)
    with open(result.outputs["out"]["path"]) as handle:
        assert handle.read().split() == ["3", "2048"]


def test_with_resources_ignores_non_numeric_and_missing():
    from repro.cwl.loader import load_document

    context = RuntimeContext(cores=2, ram_mb=512)
    plain = load_document({"cwlVersion": "v1.2", "class": "CommandLineTool",
                           "baseCommand": "true", "inputs": {}, "outputs": {}})
    assert context.with_resources(plain) is context

    weird = load_document({
        "cwlVersion": "v1.2", "class": "CommandLineTool", "baseCommand": "true",
        "requirements": [{"class": "ResourceRequirement",
                          "coresMin": "$(inputs.n)", "ramMin": 4096}],
        "inputs": {}, "outputs": {}})
    derived = context.with_resources(weird)
    assert derived.cores == 2          # expression -> fall back to context default
    assert derived.ram_mb == 4096
