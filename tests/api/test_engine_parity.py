"""Engine parity: the same document + job order yields the same outputs
through every engine of the unified API (the paper's core equivalence claim,
now assertable in one place instead of four bespoke harnesses)."""

from __future__ import annotations

import pytest

import repro
from repro import api
from repro.cwl.runtime import RuntimeContext

#: Engines that can run a bare CommandLineTool.
TOOL_ENGINES = ["reference", "toil", "parsl"]
#: Engines that can run a complete Workflow.
WORKFLOW_ENGINES = ["reference", "toil", "parsl", "parsl-workflow"]


def normalise(value):
    """Reduce an output value to its engine-independent core.

    File outputs land in different directories per engine (job dirs, the
    Parsl cwd, the Toil store), so paths are replaced by basename + size +
    contents; extra engine annotations (``jobStoreFileID``, checksums) drop.
    """
    if isinstance(value, dict) and value.get("class") == "File":
        with open(value["path"], "rb") as handle:
            contents = handle.read()
        return {"class": "File", "basename": value.get("basename"),
                "size": value.get("size"), "contents": contents}
    if isinstance(value, list):
        return [normalise(item) for item in value]
    return value


@pytest.fixture
def run_engine(tmp_path_factory, monkeypatch):
    """Run a process through one engine in an isolated working directory."""

    def run(engine, process, job_order):
        workdir = tmp_path_factory.mktemp(engine.replace("-", "_"))
        monkeypatch.chdir(workdir)
        options = {}
        if engine in ("reference", "toil"):
            options["runtime_context"] = RuntimeContext(basedir=str(workdir))
        if engine == "toil":
            options["job_store_dir"] = str(workdir / "jobstore")
            options["destroy_job_store_on_close"] = True
        if engine in ("parsl", "parsl-workflow"):
            options["config"] = repro.thread_config(
                max_threads=4, run_dir=str(workdir / "runinfo"))
        return api.run(process, dict(job_order), engine=engine, **options)

    return run


@pytest.mark.parametrize("engine", TOOL_ENGINES)
def test_command_line_tool_outputs_identical(engine, run_engine, cwl_dir):
    """Acceptance: repro.api.run(doc, order, engine=e) gives identical outputs."""
    job_order = {"message": "one API, many engines"}
    baseline = run_engine("reference", str(cwl_dir / "echo.cwl"), job_order)
    result = run_engine(engine, str(cwl_dir / "echo.cwl"), job_order)

    assert result.engine == engine
    assert result.status == "success"
    assert result.jobs_run == 1
    assert {e.kind for e in result.events} == {"start", "end"}
    assert normalise(result.outputs["output"]) == normalise(baseline.outputs["output"])
    assert normalise(result.outputs["output"])["contents"] == b"one API, many engines\n"


@pytest.mark.parametrize("engine", TOOL_ENGINES)
def test_js_expression_tool_outputs_identical(engine, run_engine, cwl_dir):
    """The compiled pipeline (toil/parsl default) must be bit-identical to the
    uncached reference runner on an expression-heavy tool."""
    job_order = {"message": "the compiled pipeline must not change results"}
    baseline = run_engine("reference", str(cwl_dir / "capitalize_js.cwl"), job_order)
    result = run_engine(engine, str(cwl_dir / "capitalize_js.cwl"), job_order)

    assert result.status == "success"
    assert normalise(result.outputs["output"])["contents"] == \
        normalise(baseline.outputs["output"])["contents"]
    assert normalise(baseline.outputs["output"])["contents"] == \
        b"The Compiled Pipeline Must Not Change Results\n"


def test_toil_compiled_matches_toil_uncompiled(run_engine, cwl_dir, tmp_path_factory):
    """Forcing compile_expressions off on the toil engine changes timing only."""
    job_order = {"message": "compiled versus uncompiled"}
    compiled = run_engine("toil", str(cwl_dir / "capitalize_js.cwl"), dict(job_order))

    workdir = tmp_path_factory.mktemp("toil_uncompiled")
    uncompiled = api.run(
        str(cwl_dir / "capitalize_js.cwl"), dict(job_order), engine="toil",
        job_store_dir=str(workdir / "jobstore"), destroy_job_store_on_close=True,
        runtime_context=RuntimeContext(basedir=str(workdir), compile_expressions=False),
    )
    assert normalise(compiled.outputs["output"])["contents"] == \
        normalise(uncompiled.outputs["output"])["contents"]


@pytest.mark.parametrize("engine", WORKFLOW_ENGINES)
def test_workflow_outputs_identical(engine, run_engine, cwl_dir, small_image):
    job_order = {"input_image": {"class": "File", "path": small_image},
                 "size": 16, "sepia": True, "radius": 1}
    baseline = run_engine("reference", str(cwl_dir / "image_pipeline.cwl"), job_order)
    result = run_engine(engine, str(cwl_dir / "image_pipeline.cwl"), job_order)

    assert result.jobs_run == 3
    assert len([e for e in result.events if e.kind == "end" and e.ok]) == 3
    assert normalise(result.outputs["final_output"]) == \
        normalise(baseline.outputs["final_output"])
