"""Engine parity: the same document + job order yields the same outputs
through every engine of the unified API (the paper's core equivalence claim,
now assertable in one place instead of four bespoke harnesses)."""

from __future__ import annotations

import pytest

import repro
from repro import api
from repro.cwl.runtime import RuntimeContext

#: Engines that can run a bare CommandLineTool.
TOOL_ENGINES = ["reference", "toil", "parsl"]
#: Engines that can run a complete Workflow.
WORKFLOW_ENGINES = ["reference", "toil", "parsl", "parsl-workflow"]


def normalise(value):
    """Reduce an output value to its engine-independent core.

    File outputs land in different directories per engine (job dirs, the
    Parsl cwd, the Toil store), so paths are replaced by basename + size +
    contents; extra engine annotations (``jobStoreFileID``, checksums) drop.
    """
    if isinstance(value, dict) and value.get("class") == "File":
        with open(value["path"], "rb") as handle:
            contents = handle.read()
        return {"class": "File", "basename": value.get("basename"),
                "size": value.get("size"), "contents": contents}
    if isinstance(value, list):
        return [normalise(item) for item in value]
    return value


@pytest.fixture
def run_engine(tmp_path_factory, monkeypatch):
    """Run a process through one engine in an isolated working directory."""

    def run(engine, process, job_order):
        workdir = tmp_path_factory.mktemp(engine.replace("-", "_"))
        monkeypatch.chdir(workdir)
        options = {}
        if engine in ("reference", "toil"):
            options["runtime_context"] = RuntimeContext(basedir=str(workdir))
        if engine == "toil":
            options["job_store_dir"] = str(workdir / "jobstore")
            options["destroy_job_store_on_close"] = True
        if engine in ("parsl", "parsl-workflow"):
            options["config"] = repro.thread_config(
                max_threads=4, run_dir=str(workdir / "runinfo"))
        return api.run(process, dict(job_order), engine=engine, **options)

    return run


@pytest.mark.parametrize("engine", TOOL_ENGINES)
def test_command_line_tool_outputs_identical(engine, run_engine, cwl_dir):
    """Acceptance: repro.api.run(doc, order, engine=e) gives identical outputs."""
    job_order = {"message": "one API, many engines"}
    baseline = run_engine("reference", str(cwl_dir / "echo.cwl"), job_order)
    result = run_engine(engine, str(cwl_dir / "echo.cwl"), job_order)

    assert result.engine == engine
    assert result.status == "success"
    assert result.jobs_run == 1
    assert {e.kind for e in result.events} == {"start", "end"}
    assert normalise(result.outputs["output"]) == normalise(baseline.outputs["output"])
    assert normalise(result.outputs["output"])["contents"] == b"one API, many engines\n"


@pytest.mark.parametrize("engine", TOOL_ENGINES)
def test_js_expression_tool_outputs_identical(engine, run_engine, cwl_dir):
    """The compiled pipeline (toil/parsl default) must be bit-identical to the
    uncached reference runner on an expression-heavy tool."""
    job_order = {"message": "the compiled pipeline must not change results"}
    baseline = run_engine("reference", str(cwl_dir / "capitalize_js.cwl"), job_order)
    result = run_engine(engine, str(cwl_dir / "capitalize_js.cwl"), job_order)

    assert result.status == "success"
    assert normalise(result.outputs["output"])["contents"] == \
        normalise(baseline.outputs["output"])["contents"]
    assert normalise(baseline.outputs["output"])["contents"] == \
        b"The Compiled Pipeline Must Not Change Results\n"


def test_toil_compiled_matches_toil_uncompiled(run_engine, cwl_dir, tmp_path_factory):
    """Forcing compile_expressions off on the toil engine changes timing only."""
    job_order = {"message": "compiled versus uncompiled"}
    compiled = run_engine("toil", str(cwl_dir / "capitalize_js.cwl"), dict(job_order))

    workdir = tmp_path_factory.mktemp("toil_uncompiled")
    uncompiled = api.run(
        str(cwl_dir / "capitalize_js.cwl"), dict(job_order), engine="toil",
        job_store_dir=str(workdir / "jobstore"), destroy_job_store_on_close=True,
        runtime_context=RuntimeContext(basedir=str(workdir), compile_expressions=False),
    )
    assert normalise(compiled.outputs["output"])["contents"] == \
        normalise(uncompiled.outputs["output"])["contents"]


#: A tool whose output file name derives from an input, so every engine —
#: including the submission-time Parsl bridge — can predict and collect it.
WRITE_TOOL = {
    "class": "CommandLineTool",
    "baseCommand": ["python3", "-c",
                    "import sys; open(sys.argv[1], 'w').write(sys.argv[2].upper())"],
    "inputs": {
        "go": {"type": "boolean"},
        "name": {"type": "string", "inputBinding": {"position": 1}},
        "word": {"type": "string", "inputBinding": {"position": 2}},
    },
    "outputs": {"out": {"type": "File", "outputBinding": {"glob": "$(inputs.name)"}}},
}


def guarded_scatter_workflow():
    return {
        "cwlVersion": "v1.2", "class": "Workflow",
        "requirements": [{"class": "ScatterFeatureRequirement"}],
        "inputs": {"go": "boolean", "names": "string[]", "words": "string[]"},
        "outputs": {"files": {"type": "Any", "outputSource": "write/out"}},
        "steps": {
            "write": {"run": dict(WRITE_TOOL), "scatter": ["name", "word"],
                      "scatterMethod": "dotproduct", "when": "$(inputs.go)",
                      "in": {"go": "go", "name": "names", "word": "words"},
                      "out": ["out"]},
        },
    }


@pytest.mark.parametrize("engine", WORKFLOW_ENGINES)
def test_when_plus_scatter_parity(engine, run_engine):
    """A false `when` guard skips the whole scattered step on every engine;
    a true guard scatters identically (same files, same contents)."""
    job_order = {"go": True, "names": ["w0.txt", "w1.txt", "w2.txt"],
                 "words": ["alpha", "beta", "gamma"]}
    baseline = run_engine("reference", guarded_scatter_workflow(), job_order)
    result = run_engine(engine, guarded_scatter_workflow(), job_order)
    assert normalise(result.outputs["files"]) == normalise(baseline.outputs["files"])
    assert [f["contents"] for f in normalise(baseline.outputs["files"])] == \
        [b"ALPHA", b"BETA", b"GAMMA"]

    skipped = run_engine(engine, guarded_scatter_workflow(),
                         {"go": False, "names": ["w0.txt"], "words": ["alpha"]})
    assert skipped.outputs["files"] is None
    assert skipped.jobs_run == 0


def merge_flattened_workflow():
    return {
        "cwlVersion": "v1.2", "class": "Workflow",
        "requirements": [{"class": "ScatterFeatureRequirement"},
                         {"class": "MultipleInputFeatureRequirement"}],
        "inputs": {"go": "boolean", "left_names": "string[]", "right_names": "string[]",
                   "left_words": "string[]", "right_words": "string[]"},
        "outputs": {"flat": {"type": "Any",
                             "outputSource": ["left/out", "right/out"],
                             "linkMerge": "merge_flattened"}},
        "steps": {
            "left": {"run": dict(WRITE_TOOL), "scatter": ["name", "word"],
                     "scatterMethod": "dotproduct",
                     "in": {"go": "go", "name": "left_names", "word": "left_words"},
                     "out": ["out"]},
            "right": {"run": dict(WRITE_TOOL), "scatter": ["name", "word"],
                      "scatterMethod": "dotproduct",
                      "in": {"go": "go", "name": "right_names", "word": "right_words"},
                      "out": ["out"]},
        },
    }


@pytest.mark.parametrize("engine", WORKFLOW_ENGINES)
def test_merge_flattened_workflow_outputs_parity(engine, run_engine):
    """`linkMerge: merge_flattened` workflow outputs combine two scatter arrays
    into one flat list identically on every engine."""
    job_order = {"go": True,
                 "left_names": ["l0.txt", "l1.txt"], "left_words": ["one", "two"],
                 "right_names": ["r0.txt"], "right_words": ["three"]}
    baseline = run_engine("reference", merge_flattened_workflow(), job_order)
    result = run_engine(engine, merge_flattened_workflow(), job_order)

    flattened = normalise(result.outputs["flat"])
    assert len(flattened) == 3
    assert flattened == normalise(baseline.outputs["flat"])
    assert [f["contents"] for f in flattened] == [b"ONE", b"TWO", b"THREE"]


@pytest.mark.parametrize("engine", WORKFLOW_ENGINES)
def test_workflow_outputs_identical(engine, run_engine, cwl_dir, small_image):
    job_order = {"input_image": {"class": "File", "path": small_image},
                 "size": 16, "sepia": True, "radius": 1}
    baseline = run_engine("reference", str(cwl_dir / "image_pipeline.cwl"), job_order)
    result = run_engine(engine, str(cwl_dir / "image_pipeline.cwl"), job_order)

    assert result.jobs_run == 3
    assert len([e for e in result.events if e.kind == "end" and e.ok]) == 3
    assert normalise(result.outputs["final_output"]) == \
        normalise(baseline.outputs["final_output"])
