"""Fault-tolerance parity: retries, timeouts and partial results everywhere.

Every engine honours the same :class:`~repro.api.RetryPolicy`: deterministic
seeded backoff, attempt caps, never-retry failure classes; per-job
``timeout_s`` reaps runaway tools; ``on_error="continue"`` turns a failed
node into partial results instead of an aborted run.  Fault injection
(:mod:`repro.cwl.faults`) makes the transient failures deterministic.
"""

from __future__ import annotations

import pytest

import repro
from repro import api
from repro.cwl.errors import JobTimeout, exit_class, unwrap_failure
from repro.cwl.faults import FaultPlan, FaultSpec
from repro.cwl.loader import load_document
from repro.cwl.runtime import RuntimeContext

#: Engines that can run a bare CommandLineTool.
TOOL_ENGINES = ["reference", "toil", "parsl"]
#: Engines that can run a complete Workflow.
WORKFLOW_ENGINES = ["reference", "toil", "parsl", "parsl-workflow"]

ECHO_TOOL = {
    "class": "CommandLineTool", "baseCommand": "echo",
    "inputs": {"message": {"type": "string", "inputBinding": {"position": 1}}},
    "outputs": {"out": "stdout"}, "stdout": "echoed.txt",
}

SLEEP_TOOL = {
    "class": "CommandLineTool", "baseCommand": "sleep",
    "inputs": {"seconds": {"type": "string", "inputBinding": {"position": 1}}},
    "outputs": {},
}


def wrap_in_workflow(tool: dict) -> dict:
    return {
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"message": "string"},
        "outputs": {"out": {"type": "File", "outputSource": "only/out"}},
        "steps": {"only": {"run": dict(tool), "in": {"message": "message"},
                           "out": ["out"]}},
    }


def transient_plan(attempts: int = 1, exit_code: int = 11) -> FaultPlan:
    return FaultPlan(specs=(FaultSpec(job="*", exit_code=exit_code,
                                      attempts=attempts),), seed=7)


@pytest.fixture
def run_engine(tmp_path_factory, monkeypatch):
    """Run a process through one engine in an isolated working directory."""

    def run(engine, process, job_order, hooks=None, **fault_options):
        workdir = tmp_path_factory.mktemp(engine.replace("-", "_"))
        monkeypatch.chdir(workdir)
        options = dict(fault_options)
        if engine in ("reference", "toil"):
            options["runtime_context"] = RuntimeContext(basedir=str(workdir))
        if engine == "toil":
            options["job_store_dir"] = str(workdir / "jobstore")
            options["destroy_job_store_on_close"] = True
        if engine in ("parsl", "parsl-workflow"):
            options["config"] = repro.thread_config(
                max_threads=4, run_dir=str(workdir / "runinfo"))
        return api.run(load_document(dict(process)), dict(job_order),
                       engine=engine, hooks=hooks, **options)

    return run


def events_for(result, kind):
    return [event for event in result.events if event.kind == kind]


# ----------------------------------------------------- transient → success

@pytest.mark.parametrize("engine", TOOL_ENGINES)
def test_transient_tool_fault_is_retried_to_success(engine, run_engine):
    result = run_engine(
        engine, ECHO_TOOL, {"message": "survived"},
        retry_policy=api.RetryPolicy(max_attempts=3, backoff_s=0.01,
                                     max_backoff_s=0.02,
                                     retryable_exit_codes=(11,)),
        fault_plan=transient_plan())
    assert result.status == "success"
    with open(result.outputs["out"]["path"]) as handle:
        assert handle.read() == "survived\n"
    retries = events_for(result, "retry")
    assert [event.attempt for event in retries] == [1]
    assert retries[0].error and "11" in retries[0].error
    (end,) = events_for(result, "end")
    assert end.ok and end.attempt == 2
    assert result.retries() == 1


@pytest.mark.parametrize("engine", WORKFLOW_ENGINES)
def test_transient_workflow_fault_is_retried_to_success(engine, run_engine):
    result = run_engine(
        engine, wrap_in_workflow(ECHO_TOOL), {"message": "wf"},
        retry_policy=api.RetryPolicy(max_attempts=3, backoff_s=0.01,
                                     max_backoff_s=0.02,
                                     retryable_exit_codes=(11,)),
        fault_plan=transient_plan())
    assert result.status == "success"
    assert result.retries() == 1
    ends = events_for(result, "end")
    assert all(event.ok for event in ends)
    assert {event.attempt for event in ends} == {2}


@pytest.mark.parametrize("engine", TOOL_ENGINES)
def test_retry_delays_are_deterministic_across_runs(engine, run_engine):
    """Two identical runs observe byte-identical backoff delays."""

    def delays():
        result = run_engine(
            engine, ECHO_TOOL, {"message": "same schedule"},
            retry_policy=api.RetryPolicy(max_attempts=4, backoff_s=0.01,
                                         max_backoff_s=0.05, seed=99,
                                         retryable_exit_codes=(11,)),
            fault_plan=transient_plan(attempts=2))
        return [event.duration_s for event in events_for(result, "retry")]

    first = delays()
    assert len(first) == 2
    assert delays() == first


# --------------------------------------------------------------- attempt cap

@pytest.mark.parametrize("engine", TOOL_ENGINES)
def test_attempt_cap_exhausts_and_fails(engine, run_engine):
    retried = []
    hooks = api.ExecutionHooks(on_job_retry=lambda e: retried.append(e.attempt))
    with pytest.raises(Exception) as excinfo:
        run_engine(
            engine, ECHO_TOOL, {"message": "doomed"}, hooks=hooks,
            retry_policy=api.RetryPolicy(max_attempts=2, backoff_s=0.01,
                                         max_backoff_s=0.02,
                                         retryable_exit_codes=(13,)),
            fault_plan=transient_plan(attempts=10 ** 6, exit_code=13))
    assert retried == [1]  # exactly one retry, then the cap
    assert exit_class(unwrap_failure(excinfo.value)) == "permanentFail"


@pytest.mark.parametrize("engine", TOOL_ENGINES)
def test_unlisted_exit_codes_never_retry(engine, run_engine):
    retried = []
    hooks = api.ExecutionHooks(on_job_retry=lambda e: retried.append(e.attempt))
    with pytest.raises(Exception):
        run_engine(
            engine, ECHO_TOOL, {"message": "fatal"}, hooks=hooks,
            retry_policy=api.RetryPolicy(max_attempts=5, backoff_s=0.01,
                                         retryable_exit_codes=(99,)),
            fault_plan=transient_plan(attempts=10 ** 6, exit_code=13))
    assert retried == []


@pytest.mark.parametrize("engine", TOOL_ENGINES)
def test_never_retry_classes_win_over_listed_errors(engine, run_engine):
    """Validation-class failures are final even if their name is listed."""
    bad_tool = {
        "class": "CommandLineTool", "baseCommand": "echo",
        "inputs": {"message": {"type": "string",
                               "inputBinding": {"position": 1,
                                                "valueFrom": "$(inputs.)"}}},
        "outputs": {},
    }
    retried = []
    hooks = api.ExecutionHooks(on_job_retry=lambda e: retried.append(e.attempt))
    with pytest.raises(Exception) as excinfo:
        run_engine(
            engine, bad_tool, {"message": "x"}, hooks=hooks,
            retry_policy=api.RetryPolicy(
                max_attempts=5, backoff_s=0.01,
                retryable_errors=("ExpressionError", "JavaScriptError",
                                  "ValidationException")))
    assert retried == []
    assert exit_class(unwrap_failure(excinfo.value)) in (
        "expressionError", "invalid")


# ------------------------------------------------------------------ timeouts

@pytest.mark.parametrize("engine", TOOL_ENGINES)
def test_timeout_reaps_the_job(engine, run_engine):
    with pytest.raises(Exception) as excinfo:
        run_engine(engine, SLEEP_TOOL, {"seconds": "30"}, timeout_s=0.5)
    failure = unwrap_failure(excinfo.value)
    assert exit_class(failure) == "workflowError"
    assert isinstance(failure, JobTimeout)


def test_timeout_is_retryable(run_engine):
    retried = []
    hooks = api.ExecutionHooks(on_job_retry=lambda e: retried.append(e.attempt))
    with pytest.raises(Exception):
        run_engine("reference", SLEEP_TOOL, {"seconds": "30"}, hooks=hooks,
                   timeout_s=0.3,
                   retry_policy=api.RetryPolicy(max_attempts=2, backoff_s=0.01,
                                                max_backoff_s=0.02))
    assert retried == [1]


# ----------------------------------------------------------- partial results

def branching_workflow() -> dict:
    """An independent good branch next to a failing chain."""
    fail_tool = {
        "class": "CommandLineTool", "baseCommand": ["sh", "-c", "exit 3"],
        "inputs": {"message": "string"}, "outputs": {},
    }
    return {
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"message": "string"},
        "outputs": {"good": {"type": "File", "outputSource": "ok/out"},
                    "poisoned": {"type": "Any", "outputSource": "after/out"}},
        "steps": {
            "ok": {"run": dict(ECHO_TOOL), "in": {"message": "message"},
                   "out": ["out"]},
            "bad": {"run": fail_tool, "in": {"message": "message"}, "out": []},
            "after": {"run": dict(ECHO_TOOL), "in": {"message": "message"},
                      "out": ["out"]},
        },
    }


@pytest.mark.parametrize("engine", ["reference", "toil"])
def test_on_error_continue_returns_partial_results(engine, run_engine):
    result = run_engine(engine, branching_workflow(), {"message": "partial"},
                        on_error="continue")
    assert result.status == "permanentFail"
    assert set(result.failures) == {"bad"}
    assert "exit code 3" in result.failures["bad"] \
        or "3" in result.failures["bad"]
    with open(result.outputs["good"]["path"]) as handle:
        assert handle.read() == "partial\n"


@pytest.mark.parametrize("engine", ["reference", "toil"])
def test_on_error_continue_poisons_downstream_nodes(engine, run_engine):
    doc = branching_workflow()
    del doc["steps"]["bad"]["out"]
    doc["steps"]["bad"]["run"]["outputs"] = {"out": "stdout"}
    doc["steps"]["bad"]["run"]["stdout"] = "never.txt"
    doc["steps"]["bad"]["out"] = ["out"]
    doc["steps"]["after"]["run"] = {
        "class": "CommandLineTool", "baseCommand": "cat",
        "inputs": {"data": {"type": "File", "inputBinding": {"position": 1}}},
        "outputs": {"out": "stdout"}, "stdout": "copy.txt",
    }
    doc["steps"]["after"]["in"] = {"data": "bad/out"}
    result = run_engine(engine, doc, {"message": "branches"},
                        on_error="continue")
    assert result.status == "permanentFail"
    assert set(result.failures) == {"bad"}
    assert result.outputs["poisoned"] is None
    with open(result.outputs["good"]["path"]) as handle:
        assert handle.read() == "branches\n"
    states = result.node_states
    assert states and any(state == "skipped" for state in states.values())


def test_on_error_continue_on_the_parsl_bridge(run_engine):
    result = run_engine("parsl-workflow", branching_workflow(),
                        {"message": "bridge"}, on_error="continue")
    assert result.status == "permanentFail"
    assert "bad" in result.failures
    with open(result.outputs["good"]["path"]) as handle:
        assert handle.read() == "bridge\n"


def test_on_error_rejects_unknown_mode(run_engine):
    with pytest.raises(ValueError, match="on_error"):
        run_engine("reference", wrap_in_workflow(ECHO_TOOL), {"message": "x"},
                   on_error="ignore")
