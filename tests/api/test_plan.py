"""Tests for api.plan() / Session.plan() and deterministic engine teardown."""

from __future__ import annotations

import os

import pytest

from repro import api
from repro.cwl.runtime import RuntimeContext


# ------------------------------------------------------------------- planning

def test_plan_of_linear_workflow(cwl_dir):
    plan = api.plan(str(cwl_dir / "image_pipeline.cwl"))
    assert plan.kind == "Workflow"
    assert plan.node_count == 3
    assert plan.edge_count == 2
    assert plan.critical_path == ["resize_image", "filter_image", "blur_image"]
    assert plan.critical_path_length == 3
    assert plan.scatter_nodes() == []
    assert plan.max_parallelism() == 1


def test_plan_of_scatter_workflow(cwl_dir):
    plan = api.plan(str(cwl_dir / "scatter_images.cwl"))
    assert plan.scatter_nodes() == ["process_image"]
    (node,) = plan.nodes
    assert node["scatter"] is True and node["kind"] == "scatter"


def test_plan_of_single_tool(cwl_dir):
    plan = api.plan(str(cwl_dir / "echo.cwl"))
    assert plan.kind == "CommandLineTool"
    assert plan.node_count == 1 and plan.edge_count == 0


def test_plan_to_dict_roundtrips_to_json(cwl_dir):
    import json

    payload = json.loads(json.dumps(api.plan(str(cwl_dir / "image_pipeline.cwl")).to_dict()))
    assert payload["critical_path_length"] == 3
    assert {node["id"] for node in payload["nodes"]} == \
        {"resize_image", "filter_image", "blur_image"}


def test_session_plan_matches_module_plan(cwl_dir):
    with api.Session(engine="reference") as session:
        plan = session.plan(str(cwl_dir / "image_pipeline.cwl"))
    assert plan.to_dict() == api.plan(str(cwl_dir / "image_pipeline.cwl")).to_dict()
    with pytest.raises(RuntimeError, match="closed"):
        session.plan(str(cwl_dir / "image_pipeline.cwl"))


def test_execution_result_carries_the_plan(cwl_dir, tmp_path, small_image):
    result = api.run(str(cwl_dir / "image_pipeline.cwl"),
                     {"input_image": {"class": "File", "path": small_image},
                      "size": 16, "sepia": True, "radius": 1},
                     engine="reference",
                     runtime_context=RuntimeContext(basedir=str(tmp_path)))
    assert result.plan is not None
    assert result.plan["critical_path"] == ["resize_image", "filter_image", "blur_image"]
    assert result.plan["node_count"] == 3

    tool_result = api.run(str(cwl_dir / "echo.cwl"), {"message": "no plan"},
                          engine="reference",
                          runtime_context=RuntimeContext(basedir=str(tmp_path)))
    assert tool_result.plan is None


# --------------------------------------------------------- toil close behaviour

def test_toil_session_destroys_its_own_temp_job_store(cwl_dir, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with api.Session(engine="toil",
                     runtime_context=RuntimeContext(basedir=str(tmp_path))) as session:
        session.run(str(cwl_dir / "echo.cwl"), {"message": "store lifecycle"})
        store_dir = session.engine._runner.job_store.store_dir  # type: ignore[union-attr]
        assert os.path.isdir(store_dir)
    assert not os.path.exists(store_dir), \
        "engine-created temp job store must be removed on Session close"


def test_toil_session_keeps_caller_supplied_job_store(cwl_dir, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    store_dir = tmp_path / "jobstore"
    with api.Session(engine="toil", job_store_dir=str(store_dir),
                     runtime_context=RuntimeContext(basedir=str(tmp_path))) as session:
        session.run(str(cwl_dir / "echo.cwl"), {"message": "keep me"})
    assert store_dir.is_dir(), "caller-supplied job store must survive close"

    with api.Session(engine="toil", job_store_dir=str(store_dir),
                     destroy_job_store_on_close=True,
                     runtime_context=RuntimeContext(basedir=str(tmp_path))) as session:
        session.run(str(cwl_dir / "echo.cwl"), {"message": "now destroy"})
    assert not store_dir.exists(), "destroy_job_store_on_close=True must remove it"


def test_toil_engine_close_is_idempotent(cwl_dir, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    session = api.Session(engine="toil",
                          runtime_context=RuntimeContext(basedir=str(tmp_path)))
    session.run(str(cwl_dir / "echo.cwl"), {"message": "close twice"})
    session.close()
    session.close()
    session.engine.close()
