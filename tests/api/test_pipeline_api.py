"""The pipelined scheduler core through the public API.

``Session(engine, pipeline=True, max_inflight=...)`` must be a pure
performance knob: canonical outputs identical to the thread-pool core on
both runner engines, per-stage timings surfaced on the result, journalled
runs resumable bit-identically, runaway jobs reaped (whole process groups)
by the asyncio subprocess path, and the Parsl engines' ``max_inflight``
bounding bridge submissions without changing results.
"""

from __future__ import annotations

import json
import os
import subprocess
import time

import pytest

import repro
from repro import api
from repro.cwl.canonical import canonical_outputs
from repro.cwl.errors import JobTimeout, unwrap_failure
from repro.cwl.loader import load_document
from repro.cwl.runtime import RuntimeContext
from repro.testing.generator import generate_workflow

PARITY_SEEDS = (101, 105, 108)  # scatter/subworkflow/when coverage varies


def run_reference(workdir, doc, order, **options):
    os.makedirs(workdir, exist_ok=True)
    return api.run(load_document(dict(doc)), dict(order), engine="reference",
                   runtime_context=RuntimeContext(basedir=str(workdir)),
                   parallel=True, max_workers=4, **options)


# ---------------------------------------------------------------- timings

def test_stage_timings_surface_only_with_pipeline(tmp_path):
    case = generate_workflow(PARITY_SEEDS[0])
    plain = run_reference(tmp_path / "plain", case.doc, case.job)
    assert plain.stage_timings is None

    piped = run_reference(tmp_path / "piped", case.doc, case.job,
                          pipeline=True, max_inflight=8)
    timings = piped.stage_timings
    assert timings is not None
    assert set(timings) >= {"stage_s", "exec_s", "collect_s",
                            "nodes", "tiny_nodes", "tiny_batches"}
    assert timings["nodes"] + timings["tiny_nodes"] > 0


def test_session_accepts_pipeline_keywords(tmp_path):
    case = generate_workflow(PARITY_SEEDS[0])
    with api.Session(engine="reference", pipeline=True, max_inflight=4,
                     runtime_context=RuntimeContext(basedir=str(tmp_path)),
                     max_workers=4) as session:
        result = session.run(load_document(dict(case.doc)), dict(case.job))
    assert result.status == "success"
    assert result.stage_timings is not None


# ----------------------------------------------------------------- parity

@pytest.mark.parametrize("seed", PARITY_SEEDS)
def test_pipeline_outputs_match_threadpool_core(seed, tmp_path):
    case = generate_workflow(seed)
    baseline = run_reference(tmp_path / "threadpool", case.doc, case.job)
    # max_inflight=2 stresses backpressure without changing semantics.
    piped = run_reference(tmp_path / "pipeline", case.doc, case.job,
                          pipeline=True, max_inflight=2)
    assert canonical_outputs(piped.outputs) == canonical_outputs(baseline.outputs)
    assert piped.node_states == baseline.node_states


def test_toil_engine_pipeline_parity(tmp_path):
    case = generate_workflow(PARITY_SEEDS[1])

    def run_toil(workdir, **options):
        os.makedirs(workdir, exist_ok=True)
        return api.run(
            load_document(dict(case.doc)), dict(case.job), engine="toil",
            runtime_context=RuntimeContext(basedir=str(workdir)),
            job_store_dir=str(workdir / "jobstore"),
            destroy_job_store_on_close=True, max_workers=4, **options)

    baseline = run_toil(tmp_path / "threadpool")
    piped = run_toil(tmp_path / "pipeline", pipeline=True, max_inflight=3)
    assert canonical_outputs(piped.outputs) == canonical_outputs(baseline.outputs)
    assert piped.stage_timings is not None


def test_parsl_bridge_max_inflight_bounds_submissions(tmp_path):
    case = generate_workflow(PARITY_SEEDS[2])

    def run_parsl(workdir, **options):
        os.makedirs(workdir, exist_ok=True)
        cwd = os.getcwd()
        os.chdir(workdir)
        try:
            return api.run(
                load_document(dict(case.doc)), dict(case.job),
                engine="parsl-workflow",
                config=repro.thread_config(max_threads=4,
                                           run_dir=str(workdir / "runinfo")),
                **options)
        finally:
            os.chdir(cwd)

    eager = run_parsl(tmp_path / "eager")
    throttled = run_parsl(tmp_path / "throttled", max_inflight=1)
    assert canonical_outputs(throttled.outputs) == canonical_outputs(eager.outputs)


# ------------------------------------------------------- timeouts / reaping

def test_pipeline_timeout_reaps_the_whole_process_group(tmp_path):
    marker = "31557"  # improbable sleep duration: greppable in ps output
    doc = {
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {}, "outputs": {},
        "steps": {"runaway": {
            "run": {"class": "CommandLineTool",
                    "baseCommand": ["/bin/sh", "-c",
                                    f"sleep {marker} & sleep {marker}"],
                    "inputs": {}, "outputs": {}},
            "in": {}, "out": []}},
    }
    started = time.time()
    with pytest.raises(Exception) as excinfo:
        api.run(load_document(doc), {}, engine="reference",
                runtime_context=RuntimeContext(basedir=str(tmp_path),
                                               timeout_s=0.5),
                parallel=True, max_workers=2, pipeline=True)
    assert isinstance(unwrap_failure(excinfo.value), JobTimeout)
    assert time.time() - started < 20, "reaping took pathologically long"
    # The grandchild (`sleep ... &`) dies with the group, not just the shell.
    deadline = time.time() + 5
    while time.time() < deadline:
        survivors = subprocess.run(["pgrep", "-f", f"sleep {marker}"],
                                   capture_output=True, text=True).stdout.strip()
        if not survivors:
            break
        time.sleep(0.1)
    assert not survivors, f"process group leaked pids: {survivors}"


# ------------------------------------------------------------------ resume

def test_resume_replays_bit_identically_under_pipeline(tmp_path):
    case = generate_workflow(PARITY_SEEDS[0])
    doc_path = tmp_path / "case.cwl"
    doc_path.write_text(json.dumps(case.doc))
    run_dir = str(tmp_path / "run")

    first = api.run_with_journal(
        str(doc_path), dict(case.job), run_dir=run_dir, engine="reference",
        runtime_context=RuntimeContext(basedir=str(tmp_path / "wd1")),
        parallel=True, max_workers=4, pipeline=True, max_inflight=4)
    assert first.status == "success"

    resumed = api.resume(
        run_dir, engine="reference",
        runtime_context=RuntimeContext(basedir=str(tmp_path / "wd2")),
        parallel=True, max_workers=4, pipeline=True, max_inflight=4)
    assert resumed.status == "success"
    assert canonical_outputs(resumed.outputs) == canonical_outputs(first.outputs)
    # Every completed job replays from the run-scoped cache.
    end_events = [e for e in resumed.events if e.kind == "end"]
    assert end_events and all(e.cache == "hit" for e in end_events)
