"""Job-cache parity across all four engines.

Cold run → warm run against one store must produce bit-identical output file
contents, with the warm run reporting ``cache_stats["hits"] == jobs_run``;
the store must also be portable *between* engines, and the key must
invalidate on input-content changes, tool-document edits and
``$(runtime.*)`` resource changes.
"""

from __future__ import annotations

import os

import pytest

import repro
from repro import api
from repro.cwl.loader import load_document
from repro.cwl.runtime import RuntimeContext

ENGINES = ["reference", "toil", "parsl", "parsl-workflow"]


def chain_workflow() -> dict:
    """echo → wc pipeline; literal stdout names keep it bridge-compatible."""
    return {
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"message": "string"},
        "outputs": {"final": {"type": "File", "outputSource": "count/out"},
                    "echoed": {"type": "File", "outputSource": "shout/out"}},
        "steps": {
            "shout": {"run": {"class": "CommandLineTool", "baseCommand": "echo",
                              "inputs": {"message": {"type": "string",
                                                     "inputBinding": {"position": 1}}},
                              "outputs": {"out": "stdout"}, "stdout": "shout.txt"},
                      "in": {"message": "message"}, "out": ["out"]},
            "count": {"run": {"class": "CommandLineTool", "baseCommand": ["wc", "-c"],
                              "inputs": {"data": {"type": "File",
                                                  "inputBinding": {"position": 1}}},
                              "outputs": {"out": "stdout"}, "stdout": "count.txt"},
                      "in": {"data": "shout/out"}, "out": ["out"]},
        },
    }


def echo_tool() -> dict:
    return {
        "class": "CommandLineTool", "baseCommand": "echo",
        "inputs": {"message": {"type": "string", "inputBinding": {"position": 1}}},
        "outputs": {"out": "stdout"}, "stdout": "echoed.txt",
    }


def file_bytes(value) -> bytes:
    with open(value["path"], "rb") as handle:
        return handle.read()


def run_once(engine: str, process, order: dict, store, workdir, monkeypatch):
    """One api.run through ``engine`` with the job cache at ``store``."""
    options: dict = {"cache_dir": str(store)}
    if engine in ("reference", "toil"):
        options["runtime_context"] = RuntimeContext(basedir=str(workdir))
    if engine == "toil":
        options["job_store_dir"] = str(workdir / "jobstore")
    if engine.startswith("parsl"):
        run_cwd = workdir / "cwd"
        run_cwd.mkdir(parents=True, exist_ok=True)
        monkeypatch.chdir(run_cwd)
        options["config"] = repro.thread_config(
            max_threads=2, run_dir=str(run_cwd / "runinfo"))
    workdir.mkdir(parents=True, exist_ok=True)
    return api.run(load_document(dict(process)), dict(order), engine=engine, **options)


@pytest.mark.parametrize("engine", ENGINES)
def test_warm_run_hits_with_bit_identical_outputs(engine, tmp_path, monkeypatch):
    store = tmp_path / "store"
    process = echo_tool() if engine == "parsl" else chain_workflow()
    order = {"message": "parity check"}

    cold = run_once(engine, process, order, store, tmp_path / "cold", monkeypatch)
    assert cold.cache_stats["hits"] == 0
    assert cold.cache_stats["misses"] == cold.jobs_run > 0

    warm = run_once(engine, process, order, store, tmp_path / "warm", monkeypatch)
    assert warm.cache_stats["hits"] == warm.jobs_run == cold.jobs_run
    assert warm.cache_stats["misses"] == 0
    assert warm.cache_hits() == warm.jobs_run
    ends = [e for e in warm.events if e.kind == "end"]
    assert ends and all(e.cache == "hit" for e in ends)
    for key in cold.outputs:
        assert file_bytes(warm.outputs[key]) == file_bytes(cold.outputs[key])


@pytest.mark.parametrize("engine", ENGINES)
def test_runner_events_and_no_stats_when_cache_off(engine, tmp_path, monkeypatch):
    process = echo_tool() if engine == "parsl" else chain_workflow()
    result = run_once(engine, process, {"message": "plain"},
                      tmp_path / "unused-store", tmp_path / "wd", monkeypatch)
    # cache_dir was supplied, so stats exist; now verify the *disabled* shape.
    assert result.cache_stats is not None
    options = {"runtime_context": RuntimeContext(basedir=str(tmp_path / "wd2"))} \
        if engine in ("reference", "toil") else {}
    if engine.startswith("parsl"):
        return  # parsl engines without cache options simply report None below
    off = api.run(load_document(dict(process)), {"message": "plain"},
                  engine=engine, **options)
    assert off.cache_stats is None
    assert all(e.cache is None for e in off.events)


def test_store_warmed_by_one_engine_is_warm_for_the_others(tmp_path, monkeypatch):
    store = tmp_path / "store"
    order = {"message": "shared store"}
    cold = run_once("toil", chain_workflow(), order, store, tmp_path / "toil", monkeypatch)
    assert cold.cache_stats == {"hits": 0, "misses": 2}

    for engine in ("reference", "parsl-workflow"):
        warm = run_once(engine, chain_workflow(), order, store,
                        tmp_path / engine, monkeypatch)
        assert warm.cache_stats == {"hits": 2, "misses": 0}, engine
        for key in cold.outputs:
            assert file_bytes(warm.outputs[key]) == file_bytes(cold.outputs[key])


def test_per_job_events_carry_hit_and_miss(tmp_path, monkeypatch):
    store = tmp_path / "store"
    run_once("reference", chain_workflow(), {"message": "ev"},
             store, tmp_path / "a", monkeypatch)
    warm = run_once("reference", chain_workflow(), {"message": "ev"},
                    store, tmp_path / "b", monkeypatch)
    ends = [e for e in warm.events if e.kind == "end"]
    assert ends and all(e.cache == "hit" for e in ends)


# ------------------------------------------------------------- invalidation


def cat_tool() -> dict:
    return {
        "class": "CommandLineTool", "baseCommand": "cat",
        "inputs": {"data": {"type": "File", "inputBinding": {"position": 1}}},
        "outputs": {"out": "stdout"}, "stdout": "copied.txt",
    }


def test_invalidates_when_input_file_content_changes(tmp_path, monkeypatch):
    store = tmp_path / "store"
    data = tmp_path / "data.txt"
    data.write_text("first contents\n")
    order = {"data": {"class": "File", "path": str(data)}}

    first = run_once("toil", cat_tool(), order, store, tmp_path / "r1", monkeypatch)
    assert first.cache_stats == {"hits": 0, "misses": 1}
    data.write_text("second contents\n")
    second = run_once("toil", cat_tool(), order, store, tmp_path / "r2", monkeypatch)
    assert second.cache_stats == {"hits": 0, "misses": 1}
    assert file_bytes(second.outputs["out"]) == b"second contents\n"
    # And the original content hits again when it comes back.
    data.write_text("first contents\n")
    third = run_once("toil", cat_tool(), order, store, tmp_path / "r3", monkeypatch)
    assert third.cache_stats == {"hits": 1, "misses": 0}
    assert file_bytes(third.outputs["out"]) == b"first contents\n"


def test_invalidates_when_tool_document_changes(tmp_path, monkeypatch):
    store = tmp_path / "store"
    edited = echo_tool()
    edited["arguments"] = ["-n"]
    first = run_once("toil", echo_tool(), {"message": "doc"},
                     store, tmp_path / "r1", monkeypatch)
    second = run_once("toil", edited, {"message": "doc"},
                      store, tmp_path / "r2", monkeypatch)
    assert first.cache_stats == {"hits": 0, "misses": 1}
    assert second.cache_stats == {"hits": 0, "misses": 1}
    assert file_bytes(first.outputs["out"]) != file_bytes(second.outputs["out"])


def test_invalidates_when_runtime_resources_change(tmp_path, monkeypatch):
    """A tool whose command embeds $(runtime.cores) re-runs when the granted
    resources change — the key covers the runtime object, not just inputs."""
    store = tmp_path / "store"
    tool = {
        "class": "CommandLineTool", "baseCommand": "echo",
        "requirements": [{"class": "InlineJavascriptRequirement"}],
        "inputs": {"message": {"type": "string", "inputBinding": {"position": 1}}},
        "arguments": [{"position": 2, "valueFrom": "$(runtime.cores)"}],
        "outputs": {"out": "stdout"}, "stdout": "cores.txt",
    }

    def run(cores: int, label: str):
        return api.run(load_document(dict(tool)), {"message": "res"}, engine="toil",
                       cache_dir=str(store), job_store_dir=str(tmp_path / label / "js"),
                       runtime_context=RuntimeContext(basedir=str(tmp_path / label),
                                                      cores=cores))

    first = run(1, "r1")
    assert first.cache_stats == {"hits": 0, "misses": 1}
    changed = run(4, "r2")
    assert changed.cache_stats == {"hits": 0, "misses": 1}
    assert file_bytes(changed.outputs["out"]) == b"res 4\n"
    again = run(4, "r3")
    assert again.cache_stats == {"hits": 1, "misses": 0}
    assert file_bytes(again.outputs["out"]) == b"res 4\n"
