"""Crash-safe journalled runs and resume (repro.api.resume).

The resume contract: an interrupted journalled run picked back up from its
run directory re-executes **only** the nodes that had not completed —
everything already done replays as a cache hit — and the resumed outputs are
bit-identical to an uninterrupted run.  Interruption is made deterministic
here with an injected fault; the CLI-level SIGTERM variant lives in
``tests/cwl/test_cli_interrupt.py``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import api
from repro.cwl.faults import FaultPlan, FaultSpec
from repro.cwl.journal import read_journal
from repro.cwl.runtime import RuntimeContext

CHAIN_DOC = {
    "cwlVersion": "v1.2", "class": "Workflow",
    "inputs": {"message": "string"},
    "outputs": {"final": {"type": "File", "outputSource": "count/out"},
                "echoed": {"type": "File", "outputSource": "shout/out"}},
    "steps": {
        "shout": {"run": {"class": "CommandLineTool", "id": "shout-tool",
                          "baseCommand": "echo",
                          "inputs": {"message": {"type": "string",
                                                 "inputBinding": {"position": 1}}},
                          "outputs": {"out": "stdout"}, "stdout": "shout.txt"},
                  "in": {"message": "message"}, "out": ["out"]},
        "count": {"run": {"class": "CommandLineTool", "id": "count-tool",
                          "baseCommand": ["wc", "-c"],
                          # stdin, not a positional arg: wc must not echo a
                          # scratch path into the output content.
                          "stdin": "$(inputs.data.path)",
                          "inputs": {"data": "File"},
                          "outputs": {"out": "stdout"}, "stdout": "count.txt"},
                  "in": {"data": "shout/out"}, "out": ["out"]},
    },
}

ORDER = {"message": "resume me"}


@pytest.fixture
def chain_doc_path(tmp_path):
    path = tmp_path / "chain.cwl"
    path.write_text(json.dumps(CHAIN_DOC))
    return str(path)


def context_for(workdir):
    os.makedirs(workdir, exist_ok=True)
    return RuntimeContext(basedir=str(workdir))


def output_bytes(result):
    return {key: open(value["path"], "rb").read()
            for key, value in result.outputs.items() if value}


def cache_modes(result):
    return {event.job: event.cache for event in result.events
            if event.kind == "end"}


def fail_count_step() -> FaultPlan:
    """A plan that kills the second (downstream) step on every attempt."""
    return FaultPlan(specs=(FaultSpec(job="count-tool", exit_code=13,
                                      attempts=10 ** 6),))


# -------------------------------------------------------------- happy path

def test_journalled_run_records_header_states_and_result(tmp_path,
                                                         chain_doc_path):
    run_dir = str(tmp_path / "run")
    result = api.run_with_journal(
        chain_doc_path, dict(ORDER), run_dir=run_dir, engine="reference",
        runtime_context=context_for(tmp_path / "wd"))
    assert result.status == "success"
    info = api.resume_info(run_dir)
    assert info["completed"] and info["status"] == "success"
    assert info["process"] == os.path.abspath(chain_doc_path)
    assert info["engine"] == "reference"
    assert info["job_order"] == ORDER
    assert set(info["node_states"]) and \
        all(state == "done" for state in info["node_states"].values())
    assert os.path.isdir(os.path.join(run_dir, "jobcache"))


def test_resume_of_a_completed_run_is_all_hits(tmp_path, chain_doc_path):
    run_dir = str(tmp_path / "run")
    first = api.run_with_journal(
        chain_doc_path, dict(ORDER), run_dir=run_dir,
        runtime_context=context_for(tmp_path / "wd1"))
    again = api.resume(run_dir, runtime_context=context_for(tmp_path / "wd2"))
    assert again.status == "success"
    assert again.cache_stats == {"hits": 2, "misses": 0}
    assert output_bytes(again) == output_bytes(first)


# ----------------------------------------------- interrupted → resumed run

def test_resume_reexecutes_only_incomplete_nodes(tmp_path, chain_doc_path):
    """The acceptance property, asserted via per-job cache events.

    The first run dies after the upstream step completed (a deterministic
    injected fault stands in for the kill); the resumed run must replay the
    completed step from the run cache (hit) and execute only the incomplete
    one (miss), with outputs bit-identical to a never-interrupted run.
    """
    # What an uninterrupted run produces, for the bit-identical check.
    pristine = api.run_with_journal(
        chain_doc_path, dict(ORDER), run_dir=str(tmp_path / "pristine"),
        runtime_context=context_for(tmp_path / "wd0"))

    run_dir = str(tmp_path / "run")
    with pytest.raises(Exception):
        api.run_with_journal(
            chain_doc_path, dict(ORDER), run_dir=run_dir,
            fault_plan=fail_count_step(),
            runtime_context=context_for(tmp_path / "wd1"))

    info = api.resume_info(run_dir)
    assert not info["completed"] or info["status"] == "failed"
    states = info["node_states"]
    assert any(state == "failed" for state in states.values())

    resumed = api.resume(run_dir, runtime_context=context_for(tmp_path / "wd2"))
    assert resumed.status == "success"
    modes = cache_modes(resumed)
    assert modes["shout-tool"] == "hit"    # completed before the interruption
    assert modes["count-tool"] == "miss"   # the only node that re-executed
    assert resumed.cache_stats == {"hits": 1, "misses": 1}
    assert output_bytes(resumed) == output_bytes(pristine)

    # The journal now carries the whole story: a failed result, then success.
    statuses = [record.get("status") for record in read_journal(run_dir)
                if record.get("kind") == "result"]
    assert statuses == ["failed", "success"]


def test_resume_can_switch_engines(tmp_path, chain_doc_path):
    """The run cache is engine-independent, so resume may change engine."""
    run_dir = str(tmp_path / "run")
    with pytest.raises(Exception):
        api.run_with_journal(
            chain_doc_path, dict(ORDER), run_dir=run_dir,
            fault_plan=fail_count_step(),
            runtime_context=context_for(tmp_path / "wd1"))
    resumed = api.resume(run_dir, engine="toil",
                         runtime_context=context_for(tmp_path / "wd2"),
                         job_store_dir=str(tmp_path / "jobstore"),
                         destroy_job_store_on_close=True)
    assert resumed.engine == "toil"
    assert resumed.status == "success"
    assert cache_modes(resumed)["shout-tool"] == "hit"


# ------------------------------------------------------------------ refusals

def test_resume_refuses_a_changed_document(tmp_path, chain_doc_path):
    run_dir = str(tmp_path / "run")
    api.run_with_journal(chain_doc_path, dict(ORDER), run_dir=run_dir,
                         runtime_context=context_for(tmp_path / "wd"))
    with open(chain_doc_path, "a") as handle:
        handle.write("\n")
    with pytest.raises(ValueError, match="fingerprint"):
        api.resume(run_dir)


def test_resume_refuses_a_missing_document(tmp_path, chain_doc_path):
    run_dir = str(tmp_path / "run")
    api.run_with_journal(chain_doc_path, dict(ORDER), run_dir=run_dir,
                         runtime_context=context_for(tmp_path / "wd"))
    os.unlink(chain_doc_path)
    with pytest.raises(FileNotFoundError):
        api.resume(run_dir)
