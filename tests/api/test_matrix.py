"""The engine × cache × compiled matrix helper (`repro.api.run_matrix`)."""

from __future__ import annotations

import pytest

from repro import api
from repro.api.matrix import (
    CACHE_MODES,
    ENGINE_ORDER,
    REFERENCE_CONFIG,
    MatrixConfig,
    matrix_configs,
    run_config,
    run_matrix,
)

ECHO_TOOL = {
    "cwlVersion": "v1.2",
    "class": "CommandLineTool",
    "baseCommand": "echo",
    "inputs": {"message": {"type": "string", "inputBinding": {"position": 1}}},
    "outputs": {"output": {"type": "stdout"}},
    "stdout": "echoed.txt",
}

FAILING_TOOL = {
    "cwlVersion": "v1.2",
    "class": "CommandLineTool",
    "baseCommand": ["bash", "-c", "exit 5"],
    "inputs": {},
    "outputs": {"output": {"type": "stdout"}},
    "stdout": "none.txt",
}


def test_matrix_configs_cross_product_order():
    configs = matrix_configs(("reference", "toil"), ("off", "warm"), (True, False))
    assert len(configs) == 8
    assert configs[0] == MatrixConfig("reference", "off", True)
    assert configs[-1] == MatrixConfig("toil", "warm", False)


def test_matrix_config_labels_are_stable():
    assert MatrixConfig("toil", "warm", False).label == "toil/cache=warm/compiled=off"
    assert REFERENCE_CONFIG.label == "reference/cache=off/compiled=default"
    assert set(CACHE_MODES) == {"off", "cold", "warm"}
    assert ENGINE_ORDER[0] == "reference"


def test_unknown_cache_mode_is_rejected():
    with pytest.raises(ValueError, match="cache mode"):
        MatrixConfig("reference", cache="lukewarm")


def test_run_config_normalises_success(tmp_path):
    run = run_config(ECHO_TOOL, {"message": "canonical"},
                     REFERENCE_CONFIG, str(tmp_path))
    assert run.ok and run.exit_class == "success"
    assert run.outputs["output"]["basename"] == "echoed.txt"
    assert run.outputs["output"]["checksum"].startswith("sha1$")
    assert "path" not in run.outputs["output"], "canonical outputs carry no paths"
    assert run.result is not None and run.result.jobs_run == 1


def test_run_config_normalises_failure(tmp_path):
    run = run_config(FAILING_TOOL, {}, REFERENCE_CONFIG, str(tmp_path))
    assert not run.ok
    assert run.exit_class == "permanentFail"
    assert run.error_class == "JobFailure"
    assert "exit code 5" in run.error
    assert run.outputs is None and run.result is None


def test_warm_cache_replays_from_the_store(tmp_path):
    run = run_config(ECHO_TOOL, {"message": "twice"},
                     MatrixConfig("reference", cache="warm"), str(tmp_path))
    assert run.ok
    assert run.cache_hits() >= 1, "the warm leg must replay from the store"
    cold = run_config(ECHO_TOOL, {"message": "twice"},
                      MatrixConfig("reference", cache="cold"),
                      str(tmp_path / "cold"))
    assert cold.ok and cold.cache_hits() == 0
    assert cold.outputs == run.outputs


def test_run_matrix_defaults_to_all_engines_cache_off(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    runs = run_matrix(ECHO_TOOL, {"message": "all engines"},
                      workdir=str(tmp_path / "matrix"))
    by_engine = {run.config.engine: run for run in runs}
    assert set(by_engine) == set(ENGINE_ORDER)
    # parsl-workflow cannot run a bare tool: normalised to a failure, not a crash
    assert not by_engine["parsl-workflow"].ok
    tool_runs = [by_engine[e] for e in ("reference", "toil", "parsl")]
    assert all(run.ok for run in tool_runs)
    assert len({str(run.outputs) for run in tool_runs}) == 1


def test_run_describe_is_json_ready(tmp_path):
    run = run_config(ECHO_TOOL, {"message": "x"}, REFERENCE_CONFIG, str(tmp_path))
    description = run.describe()
    assert description["config"] == REFERENCE_CONFIG.label
    assert description["exit_class"] == "success"
    assert description["jobs_run"] == 1
    assert "wall_time_s" in description


# ------------------------------------------------------------ pipeline axis

def test_pipeline_axis_expands_and_labels():
    configs = matrix_configs(("reference",), ("off",), (None,), (None,),
                             pipeline_modes=(None, True))
    assert [c.pipeline for c in configs] == [None, True]
    assert configs[0].label == "reference/cache=off/compiled=default"
    assert configs[1].label == "reference/cache=off/compiled=default/pipeline=on"


def test_run_config_pipeline_matches_default_core(tmp_path):
    tool = {key: value for key, value in ECHO_TOOL.items() if key != "cwlVersion"}
    doc = {
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"message": "string"},
        "outputs": {"out": {"type": "File", "outputSource": "only/output"}},
        "steps": {"only": {"run": tool, "in": {"message": "message"},
                           "out": ["output"]}},
    }
    baseline = run_config(doc, {"message": "pipelined"},
                          MatrixConfig("reference"), str(tmp_path / "plain"))
    piped = run_config(doc, {"message": "pipelined"},
                       MatrixConfig("reference", pipeline=True),
                       str(tmp_path / "piped"))
    assert piped.ok and baseline.ok
    assert piped.outputs == baseline.outputs
    assert piped.result.stage_timings is not None
    assert baseline.result.stage_timings is None


def test_conformance_cli_parses_pipeline_modes():
    from repro.testing.conformance import _configs_from, _parse_args

    args = _parse_args(["--engine", "reference", "--cache", "off",
                        "--compiled", "default", "--pipeline", "default,on"])
    configs = _configs_from(args)
    assert [c.pipeline for c in configs] == [None, True]
    with pytest.raises(SystemExit):
        _configs_from(_parse_args(["--pipeline", "sideways"]))
