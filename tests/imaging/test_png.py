"""Tests for the pure-numpy PNG codec."""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.imaging.png import PNGError, read_png, write_png


def test_round_trip_rgb(tmp_path):
    image = np.arange(4 * 5 * 3, dtype=np.uint8).reshape(4, 5, 3)
    path = tmp_path / "rgb.png"
    write_png(path, image)
    decoded = read_png(path)
    assert decoded.shape == (4, 5, 3)
    assert np.array_equal(decoded, image)


def test_round_trip_greyscale(tmp_path):
    image = np.linspace(0, 255, 6 * 7, dtype=np.uint8).reshape(6, 7)
    path = tmp_path / "grey.png"
    write_png(path, image)
    decoded = read_png(path)
    assert decoded.shape == (6, 7)
    assert np.array_equal(decoded, image)


def test_round_trip_rgba(tmp_path):
    rng = np.random.default_rng(0)
    image = rng.integers(0, 256, size=(8, 8, 4), dtype=np.uint8)
    path = tmp_path / "rgba.png"
    write_png(path, image)
    assert np.array_equal(read_png(path), image)


def test_write_clips_non_uint8(tmp_path):
    image = np.array([[[300.0, -5.0, 127.4]]])
    path = tmp_path / "clip.png"
    write_png(path, image)
    decoded = read_png(path)
    assert decoded[0, 0, 0] == 255
    assert decoded[0, 0, 1] == 0
    assert decoded[0, 0, 2] == 127


def test_write_rejects_bad_shape(tmp_path):
    with pytest.raises(PNGError):
        write_png(tmp_path / "bad.png", np.zeros((2, 2, 2), dtype=np.uint8))


def test_read_rejects_non_png(tmp_path):
    path = tmp_path / "not.png"
    path.write_bytes(b"definitely not a png")
    with pytest.raises(PNGError):
        read_png(path)


def test_read_signature_valid_but_truncated(tmp_path):
    path = tmp_path / "trunc.png"
    path.write_bytes(b"\x89PNG\r\n\x1a\n")
    with pytest.raises(PNGError):
        read_png(path)


def test_read_supports_sub_and_up_filters(tmp_path):
    """Hand-craft a PNG using filter types 1 (Sub) and 2 (Up) and decode it."""
    width, height = 4, 2
    row0 = np.array([10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120], dtype=np.uint8)
    row1 = row0 + 5

    # Scanline 0 uses Sub filtering, scanline 1 uses Up filtering.
    sub = row0.astype(np.int16).copy()
    sub[3:] = (row0[3:].astype(np.int16) - row0[:-3].astype(np.int16)) % 256
    up = (row1.astype(np.int16) - row0.astype(np.int16)) % 256
    raw = bytes([1]) + bytes(sub.astype(np.uint8)) + bytes([2]) + bytes(up.astype(np.uint8))

    def chunk(tag, data):
        return struct.pack(">I", len(data)) + tag + data + struct.pack(
            ">I", zlib.crc32(tag + data) & 0xFFFFFFFF)

    header = struct.pack(">IIBBBBB", width, height, 8, 2, 0, 0, 0)
    blob = (b"\x89PNG\r\n\x1a\n" + chunk(b"IHDR", header)
            + chunk(b"IDAT", zlib.compress(raw)) + chunk(b"IEND", b""))
    path = tmp_path / "filtered.png"
    path.write_bytes(blob)

    decoded = read_png(path)
    assert np.array_equal(decoded[0].reshape(-1), row0)
    assert np.array_equal(decoded[1].reshape(-1), row1)


@settings(max_examples=20, deadline=None)
@given(
    width=st.integers(min_value=1, max_value=16),
    height=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_round_trip_property(tmp_path_factory, width, height, seed):
    """Property: write_png followed by read_png is the identity for uint8 RGB images."""
    rng = np.random.default_rng(seed)
    image = rng.integers(0, 256, size=(height, width, 3), dtype=np.uint8)
    path = tmp_path_factory.mktemp("png") / "img.png"
    write_png(path, image)
    assert np.array_equal(read_png(path), image)
