"""Tests for the synthetic workload generator."""

from __future__ import annotations

import os

import numpy as np

from repro.imaging.png import read_png
from repro.imaging.synthetic import generate_image, generate_image_files, word_corpus


def test_generate_image_deterministic():
    a = generate_image(32, 24, seed=5)
    b = generate_image(32, 24, seed=5)
    assert np.array_equal(a, b)
    assert a.shape == (24, 32, 3)
    assert a.dtype == np.uint8


def test_generate_image_seed_changes_content():
    assert not np.array_equal(generate_image(32, 32, seed=1), generate_image(32, 32, seed=2))


def test_generate_image_files_creates_readable_pngs(tmp_path):
    paths = generate_image_files(tmp_path, 3, width=20, height=10)
    assert len(paths) == 3
    assert [os.path.basename(p) for p in paths] == ["img_0000.png", "img_0001.png", "img_0002.png"]
    for path in paths:
        image = read_png(path)
        assert image.shape == (10, 20, 3)


def test_generate_image_files_distinct_content(tmp_path):
    paths = generate_image_files(tmp_path, 2, width=16, height=16)
    assert not np.array_equal(read_png(paths[0]), read_png(paths[1]))


def test_word_corpus_deterministic_and_sized():
    words = word_corpus(50, seed=3)
    assert len(words) == 50
    assert list(words) == list(word_corpus(50, seed=3))
    assert all(isinstance(w, str) and w for w in words)
