"""Tests for the image operations used by the evaluation workflow."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.imaging.ops import blur_image, resize_image, sepia_filter


@pytest.fixture
def gradient():
    ys = np.linspace(0, 255, 32)[:, None]
    xs = np.linspace(0, 255, 48)[None, :]
    return np.stack([ys + 0 * xs, 0 * ys + xs, 0 * ys + 0 * xs + 128], axis=2).astype(np.uint8)


def test_resize_to_square(gradient):
    out = resize_image(gradient, 16)
    assert out.shape == (16, 16, 3)
    assert out.dtype == np.uint8


def test_resize_nearest_and_bilinear_agree_on_constant_image():
    const = np.full((10, 10, 3), 77, dtype=np.uint8)
    assert np.array_equal(resize_image(const, 5, "nearest"), resize_image(const, 5, "bilinear"))


def test_resize_upscale(gradient):
    out = resize_image(gradient, 64)
    assert out.shape == (64, 64, 3)


def test_resize_greyscale_keeps_two_dims():
    grey = np.arange(100, dtype=np.uint8).reshape(10, 10)
    assert resize_image(grey, 4).shape == (4, 4)


def test_resize_rejects_bad_size(gradient):
    with pytest.raises(ValueError):
        resize_image(gradient, 0)
    with pytest.raises(ValueError):
        resize_image(gradient, 8, method="bicubic")


def test_sepia_changes_colours_and_preserves_shape(gradient):
    toned = sepia_filter(gradient, apply=True)
    assert toned.shape == gradient.shape
    assert toned.dtype == np.uint8
    assert not np.array_equal(toned, gradient)


def test_sepia_disabled_is_identity(gradient):
    assert np.array_equal(sepia_filter(gradient, apply=False), gradient)


def test_sepia_is_monochrome_ordering():
    """Sepia output has R >= G >= B for every pixel (property of the matrix)."""
    rng = np.random.default_rng(1)
    image = rng.integers(0, 256, (16, 16, 3), dtype=np.uint8)
    toned = sepia_filter(image).astype(int)
    assert np.all(toned[:, :, 0] >= toned[:, :, 1])
    assert np.all(toned[:, :, 1] >= toned[:, :, 2])


def test_blur_radius_zero_is_identity(gradient):
    assert np.array_equal(blur_image(gradient, 0), gradient)


def test_blur_reduces_variance(gradient):
    rng = np.random.default_rng(2)
    noisy = rng.integers(0, 256, (32, 32, 3), dtype=np.uint8)
    blurred = blur_image(noisy, 2)
    assert blurred.shape == noisy.shape
    assert blurred.astype(float).var() < noisy.astype(float).var()


def test_blur_constant_image_unchanged():
    const = np.full((20, 20, 3), 99, dtype=np.uint8)
    assert np.array_equal(blur_image(const, 3), const)


def test_blur_rejects_negative_radius(gradient):
    with pytest.raises(ValueError):
        blur_image(gradient, -1)


def test_blur_greyscale_shape():
    grey = np.arange(64, dtype=np.uint8).reshape(8, 8)
    assert blur_image(grey, 1).shape == (8, 8)


@settings(max_examples=25, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=32),
    src=st.integers(min_value=2, max_value=40),
    method=st.sampled_from(["nearest", "bilinear"]),
)
def test_resize_property_shape_and_range(size, src, method):
    """Property: resize always produces a size x size uint8 image within [0, 255]."""
    rng = np.random.default_rng(size * 1000 + src)
    image = rng.integers(0, 256, (src, src, 3), dtype=np.uint8)
    out = resize_image(image, size, method=method)
    assert out.shape == (size, size, 3)
    assert out.dtype == np.uint8


@settings(max_examples=25, deadline=None)
@given(radius=st.integers(min_value=0, max_value=5), seed=st.integers(0, 1000))
def test_blur_property_preserves_mean_approximately(radius, seed):
    """Property: box blur preserves the image mean to within quantisation error."""
    rng = np.random.default_rng(seed)
    image = rng.integers(0, 256, (16, 16, 3), dtype=np.uint8)
    blurred = blur_image(image, radius)
    assert abs(float(blurred.mean()) - float(image.mean())) < 16.0
