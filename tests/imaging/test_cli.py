"""Tests for the repro-image-* command-line tools."""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro.imaging.cli import (
    blur_main,
    filter_main,
    generate_main,
    main as dispatcher_main,
    resize_main,
    wordtool_main,
)
from repro.imaging.png import read_png, write_png
from repro.imaging.synthetic import generate_image


@pytest.fixture
def input_png(tmp_path):
    path = tmp_path / "in.png"
    write_png(path, generate_image(40, 30, seed=1))
    return str(path)


def test_resize_main(tmp_path, input_png, capsys):
    out = tmp_path / "resized.png"
    assert resize_main([input_png, "--size", "16", "--output", str(out)]) == 0
    assert read_png(out).shape == (16, 16, 3)
    assert "resized" in capsys.readouterr().out


def test_filter_main_sepia_flag(tmp_path, input_png):
    out_plain = tmp_path / "plain.png"
    out_sepia = tmp_path / "sepia.png"
    assert filter_main([input_png, "--output", str(out_plain)]) == 0
    assert filter_main([input_png, "--sepia", "--output", str(out_sepia)]) == 0
    assert not np.array_equal(read_png(out_plain), read_png(out_sepia))


def test_blur_main(tmp_path, input_png):
    out = tmp_path / "blurred.png"
    assert blur_main([input_png, "--radius", "2", "--output", str(out)]) == 0
    assert read_png(out).shape == read_png(input_png).shape


def test_generate_main(tmp_path, capsys):
    outdir = tmp_path / "generated"
    assert generate_main(["--count", "3", "--size", "12", "--outdir", str(outdir)]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 3
    assert read_png(lines[0]).shape == (12, 12, 3)


def test_wordtool_modes(capsys):
    assert wordtool_main(["--mode", "capitalize", "hello", "world"]) == 0
    assert capsys.readouterr().out.strip() == "Hello World"
    assert wordtool_main(["--mode", "count", "a", "b", "c"]) == 0
    assert capsys.readouterr().out.strip() == "3"
    assert wordtool_main(["--mode", "upper", "abc"]) == 0
    assert capsys.readouterr().out.strip() == "ABC"
    assert wordtool_main(["plain", "text"]) == 0
    assert capsys.readouterr().out.strip() == "plain text"


def test_dispatcher_unknown_subcommand(capsys):
    assert dispatcher_main(["nope"]) == 2
    assert "unknown subcommand" in capsys.readouterr().err


def test_dispatcher_help(capsys):
    assert dispatcher_main(["-h"]) == 0
    assert "resize" in capsys.readouterr().out


def test_module_invocation_via_subprocess(tmp_path, input_png):
    """The CWL documents call `python3 -m repro.imaging.cli resize ...`; verify it works."""
    out = tmp_path / "sub.png"
    result = subprocess.run(
        [sys.executable, "-m", "repro.imaging.cli", "resize", input_png,
         "--size", "8", "--output", str(out)],
        capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stderr
    assert read_png(out).shape == (8, 8, 3)
