"""Tests for execution providers (local, Slurm, PBS, Kubernetes)."""

from __future__ import annotations

import pytest

from repro.cluster.nodes import NodeInventory
from repro.cluster.scheduler import SimulatedSlurmCluster
from repro.parsl.errors import SubmitException
from repro.parsl.providers.base import ExecutionProvider, ProviderJobState
from repro.parsl.providers.kubernetes import KubernetesProvider
from repro.parsl.providers.local import LocalProvider
from repro.parsl.providers.pbs import PBSProProvider
from repro.parsl.providers.slurm import SlurmProvider


def test_walltime_parsing():
    assert ExecutionProvider.parse_walltime("01:30:00") == 5400
    assert ExecutionProvider.parse_walltime("00:00:10") == 10
    with pytest.raises(ValueError):
        ExecutionProvider.parse_walltime("90 minutes")


def test_block_bounds_validation():
    with pytest.raises(ValueError):
        LocalProvider(init_blocks=3, max_blocks=1)
    with pytest.raises(ValueError):
        LocalProvider(nodes_per_block=0)


def test_local_provider_grants_blocks_immediately():
    provider = LocalProvider(nodes_per_block=2, cores_per_node=4)
    block = provider.submit_block("test")
    assert len(block.node_names) == 2
    assert block.cores_per_node == 4
    assert block.total_cores == 8
    assert provider.status(block) == ProviderJobState.RUNNING
    assert provider.cancel(block) is True
    assert provider.status(block) == ProviderJobState.CANCELLED
    assert provider.cancel(block) is False


@pytest.fixture
def small_cluster():
    cluster = SimulatedSlurmCluster(NodeInventory.homogeneous(3, cores=8))
    yield cluster
    cluster.shutdown()


def test_slurm_provider_allocates_and_releases(small_cluster):
    provider = SlurmProvider(nodes_per_block=2, cores_per_node=8, cluster=small_cluster,
                             allocation_timeout_s=5)
    block = provider.submit_block("pilot")
    assert len(block.node_names) == 2
    assert provider.status(block) == ProviderJobState.RUNNING
    assert small_cluster.inventory.free_cores == 8  # one node left free
    assert provider.cancel(block) is True
    # After release the cluster's cores come back.
    assert small_cluster.inventory.free_cores == 24


def test_slurm_provider_times_out_when_cluster_full(small_cluster):
    big = SlurmProvider(nodes_per_block=3, cores_per_node=8, cluster=small_cluster,
                        allocation_timeout_s=5)
    held = big.submit_block("hold-everything")
    impossible = SlurmProvider(nodes_per_block=1, cores_per_node=8, cluster=small_cluster,
                               allocation_timeout_s=0.3)
    with pytest.raises(SubmitException):
        impossible.submit_block("never-fits")
    big.cancel(held)


def test_pbs_provider_select_statement(small_cluster):
    provider = PBSProProvider(nodes_per_block=2, cores_per_node=8, queue="debug",
                              cluster=small_cluster)
    assert provider.select_statement == "select=2:ncpus=8"
    block = provider.submit_block("pbs-block")
    assert provider.status(block) == ProviderJobState.RUNNING
    provider.cancel(block)


def test_kubernetes_provider_pods():
    provider = KubernetesProvider(pods_per_block=3, cores_per_pod=2, namespace="science")
    block = provider.submit_block("pods")
    assert len(block.node_names) == 3
    assert all(name.startswith("science/pod-") for name in block.node_names)
    assert block.metadata["image"].startswith("python")
    assert provider.cancel(block) is True
