"""Tests for launchers and channels."""

from __future__ import annotations

from repro.parsl.channels import LocalChannel
from repro.parsl.launchers import (
    MpiExecLauncher,
    SimpleLauncher,
    SingleNodeLauncher,
    SrunLauncher,
)


def test_simple_launcher_passthrough():
    assert SimpleLauncher()("worker --pool", 4, 2) == "worker --pool"


def test_single_node_launcher_fans_out_ranks():
    script = SingleNodeLauncher()("worker", tasks_per_node=3, nodes_per_block=1)
    assert script.count("worker &") == 3
    assert "PARSL_RANK=0" in script and "PARSL_RANK=2" in script
    assert script.strip().endswith("wait")


def test_srun_launcher_format():
    command = SrunLauncher()("worker", tasks_per_node=8, nodes_per_block=3)
    assert command.startswith("srun ")
    assert "--ntasks=24" in command
    assert "--ntasks-per-node=8" in command
    assert "--nodes=3" in command
    assert command.endswith("worker")


def test_srun_launcher_overrides():
    command = SrunLauncher(overrides="--exclusive")("w", 1, 1)
    assert "--exclusive" in command


def test_mpiexec_launcher_format():
    command = MpiExecLauncher()("worker", tasks_per_node=4, nodes_per_block=2)
    assert command.startswith("mpiexec -n 8")
    assert "--ppn 4" in command


def test_local_channel_execute_wait_success():
    code, out, err = LocalChannel().execute_wait("echo channel-test")
    assert code == 0
    assert out.strip() == "channel-test"
    assert err == ""


def test_local_channel_execute_wait_failure():
    code, _out, _err = LocalChannel().execute_wait("exit 4")
    assert code == 4


def test_local_channel_env_passthrough():
    code, out, _ = LocalChannel().execute_wait("echo $REPRO_TEST_VAR",
                                               env={"REPRO_TEST_VAR": "value42"})
    assert code == 0
    assert out.strip() == "value42"


def test_local_channel_push_file(tmp_path):
    source = tmp_path / "script.sh"
    source.write_text("#!/bin/bash\n")
    destination_dir = tmp_path / "scripts"
    pushed = LocalChannel().push_file(str(source), str(destination_dir))
    assert pushed == str(destination_dir / "script.sh")
    assert (destination_dir / "script.sh").exists()
