"""Tests for the DataFlowKernel: apps, dependencies, retries, memoization, joins."""

from __future__ import annotations

import os
import time

import pytest

import repro
from repro.parsl import bash_app, join_app, python_app
from repro.parsl.config import Config
from repro.parsl.dataflow.dflow import DataFlowKernel, DataFlowKernelLoader
from repro.parsl.dataflow.states import States
from repro.parsl.errors import (
    BashExitFailure,
    ConfigurationError,
    DependencyError,
    MissingOutputs,
    NoDataFlowKernelError,
)
from repro.parsl.executors.threads import ThreadPoolExecutor


@python_app
def add(a, b):
    return a + b


@python_app
def fail_always():
    raise ValueError("intentional failure")


@bash_app
def echo_to_file(message, stdout=None):
    return f"echo {message}"


@bash_app
def failing_command():
    return "exit 9"


@join_app
def fan_out_sum(n):
    return [add(i, i) for i in range(n)]


def test_apps_require_loaded_dfk():
    with pytest.raises(NoDataFlowKernelError):
        add(1, 2)


def test_double_load_rejected(tmp_path):
    repro.load(repro.thread_config(run_dir=str(tmp_path / "r1")))
    with pytest.raises(ConfigurationError):
        repro.load(repro.thread_config(run_dir=str(tmp_path / "r2")))
    repro.clear()


def test_python_app_and_dependency_chain(parsl_threads):
    first = add(1, 2)
    second = add(first, 10)
    third = add(second, first)
    assert third.result() == 16
    assert first.task_record.status == States.exec_done


def test_bash_app_writes_stdout(parsl_threads, tmp_path):
    out = tmp_path / "echo.txt"
    future = echo_to_file("hello parsl", stdout=str(out))
    assert future.result() == 0
    assert out.read_text().strip() == "hello parsl"
    assert future.stdout == str(out)


def test_bash_app_failure_raises_exit_failure(parsl_threads):
    future = failing_command()
    with pytest.raises(BashExitFailure) as err:
        future.result()
    assert err.value.exitcode == 9


def test_bash_app_missing_outputs(parsl_threads, tmp_path):
    @bash_app
    def claims_outputs(outputs=None):
        return "true"

    future = claims_outputs(outputs=[repro.File(str(tmp_path / "never_created.txt"))])
    with pytest.raises(MissingOutputs):
        future.result()


def test_dependency_failure_propagates(parsl_threads):
    bad = fail_always()
    downstream = add(bad, 1)
    with pytest.raises(ValueError):
        bad.result()
    with pytest.raises(DependencyError) as err:
        downstream.result()
    assert downstream.task_record.status == States.dep_fail
    assert any(isinstance(e, ValueError) for e in err.value.dependent_exceptions)


def test_join_app_waits_for_inner_futures(parsl_threads):
    future = fan_out_sum(5)
    assert future.result() == [0, 2, 4, 6, 8]
    assert future.task_record.app_type == "join"


def test_join_app_plain_return_value(parsl_threads):
    @join_app
    def no_futures():
        return 42

    assert no_futures().result() == 42


def test_outputs_become_datafutures(parsl_threads, tmp_path):
    out_file = tmp_path / "made.txt"

    @bash_app
    def make_file(outputs=None):
        return f"echo content > {outputs[0]}"

    future = make_file(outputs=[repro.File(str(out_file))])
    assert len(future.outputs) == 1
    produced = future.outputs[0].result()
    assert produced.filepath == str(out_file)
    assert out_file.read_text().strip() == "content"


def test_datafuture_feeds_downstream_app(parsl_threads, tmp_path):
    upstream_out = tmp_path / "upstream.txt"

    @bash_app
    def produce(outputs=None):
        return f"echo 41 > {outputs[0]}"

    @python_app
    def consume(path_like):
        with open(path_like.filepath) as handle:
            return int(handle.read()) + 1

    producer = produce(outputs=[repro.File(str(upstream_out))])
    consumer = consume(producer.outputs[0])
    assert consumer.result() == 42


def test_retries_eventually_succeed(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    config = Config(executors=[ThreadPoolExecutor(max_threads=2)], retries=2,
                    run_dir=str(tmp_path / "runinfo"))
    repro.load(config)
    counter = {"attempts": 0}

    @python_app
    def flaky():
        counter["attempts"] += 1
        if counter["attempts"] < 3:
            raise RuntimeError("transient")
        return "recovered"

    try:
        assert flaky().result() == "recovered"
        assert counter["attempts"] == 3
    finally:
        repro.clear()


def test_retries_exhausted_reports_failure(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    repro.load(Config(executors=[ThreadPoolExecutor(max_threads=2)], retries=1,
                      run_dir=str(tmp_path / "runinfo")))

    @python_app
    def always_bad():
        raise RuntimeError("permanent")

    try:
        future = always_bad()
        with pytest.raises(RuntimeError, match="permanent"):
            future.result()
        assert future.task_record.fail_count == 2  # original + one retry
    finally:
        repro.clear()


def test_memoization_within_run(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    repro.load(Config(executors=[ThreadPoolExecutor(max_threads=2)], app_cache=True,
                      run_dir=str(tmp_path / "runinfo")))
    calls = {"n": 0}

    @python_app(cache=True)
    def expensive(x):
        calls["n"] += 1
        return x * 2

    try:
        assert expensive(4).result() == 8
        assert expensive(4).result() == 8
        assert expensive(5).result() == 10
        assert calls["n"] == 2  # second call to expensive(4) served from memo
    finally:
        repro.clear()


def test_checkpoint_and_reload(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    config = Config(executors=[ThreadPoolExecutor(max_threads=2)], app_cache=True,
                    run_dir=str(tmp_path / "runinfo"))
    dfk = repro.load(config)

    @python_app(cache=True)
    def square(x):
        return x * x

    square(6).result()
    checkpoint_path = dfk.checkpoint()
    repro.clear()
    assert os.path.exists(checkpoint_path)

    repro.load(Config(executors=[ThreadPoolExecutor(max_threads=2)], app_cache=True,
                      checkpoint_files=[checkpoint_path], run_dir=str(tmp_path / "runinfo2")))
    try:
        dfk2 = DataFlowKernelLoader.dfk()
        assert len(dfk2.memoizer) == 1
    finally:
        repro.clear()


def test_task_summary_and_wait(parsl_threads):
    futures = [add(i, i) for i in range(5)]
    parsl_threads.wait_for_current_tasks()
    summary = parsl_threads.task_summary()
    assert summary.get("exec_done", 0) >= 5
    assert all(f.done() for f in futures)


def test_executor_label_routing(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    config = Config(
        executors=[ThreadPoolExecutor(label="alpha", max_threads=2),
                   ThreadPoolExecutor(label="beta", max_threads=2)],
        run_dir=str(tmp_path / "runinfo"),
    )
    repro.load(config)

    @python_app(executors=["beta"])
    def where_am_i():
        import threading

        return threading.current_thread().name

    @python_app(executors=["nonexistent"])
    def misrouted():
        return 1

    try:
        assert "parsl-worker" in where_am_i().result()
        future = misrouted()
        with pytest.raises(ConfigurationError):
            future.result()
    finally:
        repro.clear()


def test_duplicate_executor_labels_rejected(tmp_path):
    config = Config(executors=[ThreadPoolExecutor(label="x"), ThreadPoolExecutor(label="x")],
                    run_dir=str(tmp_path / "runinfo"))
    with pytest.raises(ConfigurationError):
        DataFlowKernel(config)


def test_submit_after_cleanup_rejected(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    dfk = repro.load(repro.thread_config(run_dir=str(tmp_path / "runinfo")))
    repro.clear()
    from repro.parsl.errors import DataFlowKernelShutdownError

    with pytest.raises((DataFlowKernelShutdownError, NoDataFlowKernelError)):
        dfk.submit(lambda: 1, (), {})
