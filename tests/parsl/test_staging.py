"""Tests for data staging providers."""

from __future__ import annotations

import os

from repro.parsl.data_provider.files import File
from repro.parsl.data_provider.staging import CopyStaging, DataManager, NoOpStaging


def test_noop_staging_accepts_local_files(tmp_path):
    staging = NoOpStaging()
    file = File(str(tmp_path / "a.txt"))
    assert staging.can_stage_in(file)
    staged = staging.stage_in(file, working_dir=None)
    assert staged.local_path == staged.path


def test_noop_staging_rejects_remote():
    assert not NoOpStaging().can_stage_in(File("https://example.org/a"))


def test_copy_staging_copies_into_working_dir(tmp_path):
    source = tmp_path / "src" / "input.txt"
    source.parent.mkdir()
    source.write_text("payload")
    workdir = tmp_path / "work"

    staged = CopyStaging().stage_in(File(str(source)), str(workdir))
    assert staged.local_path == str(workdir / "input.txt")
    assert (workdir / "input.txt").read_text() == "payload"


def test_copy_staging_stage_out_copies_back(tmp_path):
    workdir = tmp_path / "work"
    workdir.mkdir()
    (workdir / "result.txt").write_text("answer")
    target = File(str(tmp_path / "final" / "result.txt"))

    CopyStaging().stage_out(target, str(workdir))
    assert (tmp_path / "final" / "result.txt").read_text() == "answer"


def test_data_manager_uses_first_matching_provider(tmp_path):
    manager = DataManager([NoOpStaging()])
    local = manager.stage_in(File(str(tmp_path / "x.txt")))
    assert local.local_path is not None


def test_data_manager_passthrough_for_unknown_scheme():
    manager = DataManager([NoOpStaging()])
    remote = manager.stage_in(File("gridftp://host/path/file.dat"))
    assert remote.local_path == remote.path  # falls back to pass-through


def test_data_manager_stage_out_noop_for_unknown_scheme():
    manager = DataManager([NoOpStaging()])
    file = File("https://example.org/out.bin")
    assert manager.stage_out(file) is file
