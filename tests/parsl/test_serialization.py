"""Tests for task payload serialization."""

from __future__ import annotations

import pytest

from repro.parsl.errors import SerializationError
from repro.parsl.serialization import (
    deserialize,
    pack_apply_message,
    serialize,
    unpack_apply_message,
)


def module_level_function(a, b=2):
    return a + b


def test_round_trip_simple_values():
    for value in [1, "text", [1, 2, 3], {"a": (1, 2)}, None, 3.5]:
        assert deserialize(serialize(value)) == value


def test_pack_unpack_apply_message_with_module_function():
    blob = pack_apply_message(module_level_function, (3,), {"b": 4})
    func, args, kwargs = unpack_apply_message(blob)
    assert func(*args, **kwargs) == 7


def test_pack_unpack_closures():
    offset = 10

    def closure(x):
        return x + offset

    func, args, kwargs = unpack_apply_message(pack_apply_message(closure, (5,), {}))
    assert func(*args, **kwargs) == 15


def test_pack_unpack_lambda():
    func, args, kwargs = unpack_apply_message(pack_apply_message(lambda x: x * 3, (4,), {}))
    assert func(*args, **kwargs) == 12


def test_deserialize_garbage_raises():
    with pytest.raises(SerializationError):
        deserialize(b"this is not a pickle")


def test_serialize_unserializable_raises():
    import threading

    with pytest.raises(SerializationError):
        serialize(threading.Lock())
