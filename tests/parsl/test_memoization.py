"""Tests for the memoizer and checkpointing."""

from __future__ import annotations

from repro.parsl.data_provider.files import File
from repro.parsl.dataflow.memoization import Memoizer, make_hash
from repro.parsl.dataflow.taskrecord import TaskRecord


def record(func_name="app", args=(), kwargs=None, memoize=True, ignore=()):
    return TaskRecord(id=0, func=lambda: None, func_name=func_name, args=args,
                      kwargs=kwargs or {}, memoize=memoize, ignore_for_cache=ignore)


def test_same_invocation_same_hash():
    assert make_hash(record(args=(1, 2), kwargs={"x": "y"})) == \
        make_hash(record(args=(1, 2), kwargs={"x": "y"}))


def test_different_args_different_hash():
    assert make_hash(record(args=(1,))) != make_hash(record(args=(2,)))


def test_different_app_name_different_hash():
    assert make_hash(record(func_name="a")) != make_hash(record(func_name="b"))


def test_kwarg_order_does_not_matter():
    a = record(kwargs={"x": 1, "y": 2})
    b = record(kwargs={"y": 2, "x": 1})
    assert make_hash(a) == make_hash(b)


def test_ignore_for_cache_removes_kwarg_from_key():
    a = record(kwargs={"x": 1, "label": "run1"}, ignore=("label",))
    b = record(kwargs={"x": 1, "label": "run2"}, ignore=("label",))
    assert make_hash(a) == make_hash(b)


def test_files_hash_by_url():
    a = record(kwargs={"inp": File("/data/a.txt")})
    b = record(kwargs={"inp": File("/data/a.txt")})
    c = record(kwargs={"inp": File("/data/c.txt")})
    assert make_hash(a) == make_hash(b)
    assert make_hash(a) != make_hash(c)


def test_memoizer_hit_and_miss():
    memo = Memoizer(enabled=True)
    task = record(args=(5,))
    assert memo.check(task) is None
    memo.update(task, 25)
    again = record(args=(5,))
    assert memo.check(again) == 25
    assert len(memo) == 1


def test_memoizer_respects_task_opt_out():
    memo = Memoizer(enabled=True)
    task = record(memoize=False)
    memo.update(task, "value")
    assert memo.check(record(memoize=False)) is None
    assert len(memo) == 0


def test_memoizer_disabled_globally():
    memo = Memoizer(enabled=False)
    task = record()
    memo.update(task, 1)
    assert memo.check(task) is None


def test_checkpoint_round_trip(tmp_path):
    memo = Memoizer(enabled=True)
    task = record(args=("chk",))
    memo.check(task)
    memo.update(task, "result")
    path = memo.checkpoint(str(tmp_path / "ckpt" / "memo.pkl"))

    restored = Memoizer(enabled=True, checkpoint_files=[path])
    assert restored.check(record(args=("chk",))) == "result"


def test_load_checkpoint_missing_file_is_ignored(tmp_path):
    memo = Memoizer(enabled=True)
    assert memo.load_checkpoint(str(tmp_path / "absent.pkl")) == 0
