"""Tests for AppFuture and DataFuture semantics."""

from __future__ import annotations

import pytest

from repro.parsl.data_provider.files import File
from repro.parsl.dataflow.futures import AppFuture, DataFuture
from repro.parsl.dataflow.taskrecord import TaskRecord


def make_record(task_id: int = 0, **kwargs) -> TaskRecord:
    return TaskRecord(id=task_id, func=lambda: None, func_name="noop", kwargs=kwargs)


def test_app_future_exposes_task_metadata():
    record = make_record(7, stdout="out.txt", stderr="err.txt")
    future = AppFuture(record)
    assert future.tid == 7
    assert future.stdout == "out.txt"
    assert future.stderr == "err.txt"
    assert future.task_status() == "unsched"
    assert "noop" in repr(future)


def test_data_future_resolves_with_parent():
    parent = AppFuture(make_record(1))
    data = DataFuture(parent, File("/tmp/result.txt"))
    assert not data.done()
    parent.set_result(0)
    assert data.done()
    assert data.result().filepath == "/tmp/result.txt"
    assert data.filepath == "/tmp/result.txt"
    assert data.filename == "result.txt"
    assert data.tid == 1


def test_data_future_propagates_parent_failure():
    parent = AppFuture(make_record(2))
    data = DataFuture(parent, File("/tmp/never.txt"))
    parent.set_exception(RuntimeError("task failed"))
    with pytest.raises(RuntimeError, match="task failed"):
        data.result()


def test_data_future_accepts_plain_path_strings():
    parent = AppFuture(make_record(3))
    data = DataFuture(parent, "relative/output.png")  # type: ignore[arg-type]
    assert data.filename == "output.png"


def test_data_future_cannot_be_cancelled():
    parent = AppFuture(make_record(4))
    data = DataFuture(parent, File("x"))
    with pytest.raises(NotImplementedError):
        data.cancel()


def test_add_output_registers_data_future():
    parent = AppFuture(make_record(5))
    data = DataFuture(parent, File("a.txt"))
    parent.add_output(data)
    assert parent.outputs == [data]


def test_data_future_fspath():
    import os

    parent = AppFuture(make_record(6))
    data = DataFuture(parent, File("/tmp/somewhere.bin"))
    assert os.fspath(data) == "/tmp/somewhere.bin"
