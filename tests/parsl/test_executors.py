"""Tests for the executor implementations (threads, processes, workqueue, HTEX)."""

from __future__ import annotations

import time

import pytest

from repro.parsl.executors.high_throughput.executor import HighThroughputExecutor
from repro.parsl.executors.processes import ProcessPoolExecutor
from repro.parsl.executors.threads import ThreadPoolExecutor
from repro.parsl.executors.workqueue import WorkQueueStyleExecutor
from repro.parsl.providers.local import LocalProvider


def square(x):
    return x * x


def boom():
    raise RuntimeError("executor task failure")


# --------------------------------------------------------------------- threads


def test_thread_pool_runs_tasks():
    executor = ThreadPoolExecutor(max_threads=2)
    executor.start()
    try:
        futures = [executor.submit(square, {}, i) for i in range(10)]
        assert [f.result() for f in futures] == [i * i for i in range(10)]
    finally:
        executor.shutdown()


def test_thread_pool_outstanding_counter():
    executor = ThreadPoolExecutor(max_threads=1)
    executor.start()
    try:
        future = executor.submit(time.sleep, {}, 0.05)
        assert executor.outstanding() >= 1
        future.result()
        time.sleep(0.02)
        assert executor.outstanding() == 0
    finally:
        executor.shutdown()


def test_thread_pool_submit_before_start_raises():
    executor = ThreadPoolExecutor(max_threads=1)
    with pytest.raises(RuntimeError):
        executor.submit(square, {}, 1)


def test_thread_pool_rejects_zero_threads():
    with pytest.raises(ValueError):
        ThreadPoolExecutor(max_threads=0)


# -------------------------------------------------------------------- processes


def test_process_pool_runs_tasks_and_closures():
    executor = ProcessPoolExecutor(max_workers=2)
    executor.start()
    offset = 7

    def with_closure(x):
        return x + offset

    try:
        assert executor.submit(square, {}, 6).result() == 36
        assert executor.submit(with_closure, {}, 1).result() == 8
    finally:
        executor.shutdown()


def test_process_pool_propagates_exceptions():
    executor = ProcessPoolExecutor(max_workers=1)
    executor.start()
    try:
        with pytest.raises(RuntimeError, match="executor task failure"):
            executor.submit(boom, {}).result()
    finally:
        executor.shutdown()


# -------------------------------------------------------------------- workqueue


def test_workqueue_runs_tasks_with_default_resources():
    executor = WorkQueueStyleExecutor(total_cores=2)
    executor.start()
    try:
        futures = [executor.submit(square, {"cores": 1}, i) for i in range(6)]
        assert [f.result() for f in futures] == [i * i for i in range(6)]
    finally:
        executor.shutdown()


def test_workqueue_respects_core_budget():
    """Two 2-core tasks on a 2-core budget cannot overlap."""
    executor = WorkQueueStyleExecutor(total_cores=2)
    executor.start()
    running = []

    def tracked(idx):
        running.append(idx)
        current = len(running)
        time.sleep(0.05)
        running.remove(idx)
        return current

    try:
        futures = [executor.submit(tracked, {"cores": 2}, i) for i in range(3)]
        results = [f.result() for f in futures]
        assert all(r == 1 for r in results), "2-core tasks must run one at a time"
    finally:
        executor.shutdown()


def test_workqueue_rejects_oversized_task():
    executor = WorkQueueStyleExecutor(total_cores=2, total_memory_mb=100)
    executor.start()
    try:
        future = executor.submit(square, {"cores": 99}, 1)
        with pytest.raises(ValueError):
            future.result()
    finally:
        executor.shutdown()


def test_workqueue_propagates_task_exception():
    executor = WorkQueueStyleExecutor(total_cores=1)
    executor.start()
    try:
        with pytest.raises(RuntimeError):
            executor.submit(boom, {}).result()
    finally:
        executor.shutdown()


def test_workqueue_utilisation_returns_to_zero():
    executor = WorkQueueStyleExecutor(total_cores=4)
    executor.start()
    try:
        futures = [executor.submit(square, {}, i) for i in range(4)]
        [f.result() for f in futures]
        time.sleep(0.05)
        assert executor.utilisation() == 0.0
    finally:
        executor.shutdown()


# ------------------------------------------------------------------------ HTEX


@pytest.fixture
def htex():
    executor = HighThroughputExecutor(
        label="htex-test",
        provider=LocalProvider(nodes_per_block=1, cores_per_node=2, init_blocks=1, max_blocks=1),
        max_workers_per_node=2,
    )
    executor.start()
    yield executor
    executor.shutdown()


def test_htex_runs_tasks_in_worker_processes(htex):
    futures = [htex.submit(square, {}, i) for i in range(12)]
    assert [f.result() for f in futures] == [i * i for i in range(12)]
    assert htex.connected_blocks == 1
    assert htex.total_workers == 2


def test_htex_task_exception_propagates(htex):
    with pytest.raises(RuntimeError, match="executor task failure"):
        htex.submit(boom, {}).result()


def test_htex_tasks_really_use_other_processes(htex):
    import os

    pids = {htex.submit(os.getpid, {}).result() for _ in range(6)}
    assert os.getpid() not in pids


def test_htex_elastic_scale_out():
    provider = LocalProvider(nodes_per_block=1, cores_per_node=1,
                             init_blocks=1, min_blocks=1, max_blocks=3)
    executor = HighThroughputExecutor(label="htex-elastic", provider=provider,
                                      max_workers_per_node=1, enable_elastic_scaling=True)
    executor.start()
    try:
        futures = [executor.submit(time.sleep, {}, 0.05) for _ in range(8)]
        [f.result() for f in futures]
        assert executor.connected_blocks >= 2, "backlog should have triggered scale-out"
    finally:
        executor.shutdown()


def test_htex_scale_in_reduces_blocks():
    provider = LocalProvider(nodes_per_block=1, cores_per_node=1,
                             init_blocks=2, min_blocks=0, max_blocks=2)
    executor = HighThroughputExecutor(label="htex-scalein", provider=provider,
                                      max_workers_per_node=1, enable_elastic_scaling=False)
    executor.start()
    try:
        assert executor.connected_blocks == 2
        removed = executor.scale_in(1)
        assert removed == 1
        assert executor.connected_blocks == 1
        # Remaining workers still serve tasks.
        assert executor.submit(square, {}, 3).result() == 9
    finally:
        executor.shutdown()


def test_htex_shutdown_is_idempotent(htex):
    htex.shutdown()
    htex.shutdown()
