"""Tests for the Parsl File abstraction."""

from __future__ import annotations

import os

import pytest

from repro.parsl.data_provider.files import File


def test_plain_path_is_file_scheme(tmp_path):
    path = tmp_path / "data.txt"
    file = File(str(path))
    assert file.scheme == "file"
    assert file.filepath == str(path)
    assert file.filename == "data.txt"


def test_file_url_parsing():
    file = File("file:///data/input.csv")
    assert file.scheme == "file"
    assert file.path == "/data/input.csv"
    assert file.filename == "input.csv"


def test_remote_url_requires_staging():
    file = File("https://example.org/dataset.tar.gz")
    assert file.is_remote()
    with pytest.raises(ValueError):
        _ = file.filepath
    file.local_path = "/tmp/dataset.tar.gz"
    assert file.filepath == "/tmp/dataset.tar.gz"


def test_exists_and_size(tmp_path):
    path = tmp_path / "present.txt"
    path.write_text("hello")
    assert File(str(path)).exists()
    assert File(str(path)).size() == 5
    assert not File(str(tmp_path / "absent")).exists()


def test_fspath_protocol(tmp_path):
    path = tmp_path / "x.txt"
    path.write_text("1")
    file = File(str(path))
    assert os.path.exists(file)  # os functions accept File via __fspath__


def test_equality_and_hash():
    a = File("/tmp/a.txt")
    b = File("/tmp/a.txt")
    c = File("/tmp/c.txt")
    assert a == b and hash(a) == hash(b)
    assert a != c
    assert a != "/tmp/a.txt"  # not equal to plain strings


def test_idempotent_construction():
    original = File("/tmp/a.txt")
    wrapped = File(original)
    assert wrapped == original


def test_cleancopy_resets_staging_state():
    file = File("https://example.org/x.bin")
    file.local_path = "/scratch/x.bin"
    fresh = file.cleancopy()
    assert fresh.local_path is None
    assert fresh.url == file.url


def test_rejects_non_string():
    with pytest.raises(TypeError):
        File(123)  # type: ignore[arg-type]
