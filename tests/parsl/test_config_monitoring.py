"""Tests for Config validation, ready-made configs and the monitoring hub."""

from __future__ import annotations

import json

import pytest

import repro
from repro.parsl import python_app
from repro.parsl.config import Config
from repro.parsl.configs import (
    htex_config,
    htex_local_config,
    local_process_config,
    thread_config,
    workqueue_config,
)
from repro.parsl.errors import ConfigurationError
from repro.parsl.executors.threads import ThreadPoolExecutor
from repro.parsl.monitoring.monitoring import MonitoringHub


def test_config_rejects_negative_retries():
    with pytest.raises(ConfigurationError):
        Config(executors=[ThreadPoolExecutor()], retries=-1)


def test_config_rejects_bad_checkpoint_mode():
    with pytest.raises(ConfigurationError):
        Config(executors=[ThreadPoolExecutor()], checkpoint_mode="sometimes")


def test_config_rejects_bad_strategy():
    with pytest.raises(ConfigurationError):
        Config(executors=[ThreadPoolExecutor()], strategy="aggressive")


def test_default_config_uses_threads():
    config = Config.default()
    assert len(config.executors) == 1
    assert isinstance(config.executors[0], ThreadPoolExecutor)


@pytest.mark.parametrize("factory,label", [
    (thread_config, "threads"),
    (local_process_config, "processes"),
    (workqueue_config, "workqueue"),
    (htex_local_config, "htex_local"),
])
def test_factory_configs_have_expected_labels(factory, label):
    config = factory()
    assert config.executors[0].label == label


def test_htex_config_builds_slurm_provider():
    from repro.cluster.nodes import NodeInventory
    from repro.cluster.scheduler import SimulatedSlurmCluster
    from repro.parsl.providers.slurm import SlurmProvider

    cluster = SimulatedSlurmCluster(NodeInventory.homogeneous(3, cores=8))
    try:
        config = htex_config(nodes=3, workers_per_node=2, cores_per_node=8, cluster=cluster)
        executor = config.executors[0]
        assert isinstance(executor.provider, SlurmProvider)
        assert executor.provider.nodes_per_block == 3
        assert executor.max_workers_per_node == 2
    finally:
        cluster.shutdown()


def test_monitoring_hub_records_task_transitions(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    repro.load(thread_config(max_threads=2, run_dir=str(tmp_path / "runinfo"), monitoring=True))

    @python_app
    def tracked(x):
        return x + 1

    try:
        assert tracked(1).result() == 2
        dfk = repro.dfk()
        assert dfk.monitoring is not None
        events = dfk.monitoring.events()
        statuses = [e.status for e in events]
        assert "pending" in statuses and "exec_done" in statuses
        counts = dfk.monitoring.state_counts()
        assert counts.get("exec_done") == 1
    finally:
        repro.clear()

    # Events were flushed to the JSONL file and can be loaded back.
    monitoring_files = list((tmp_path / "runinfo").glob("*/monitoring.jsonl"))
    assert monitoring_files
    loaded = MonitoringHub.load_events(str(monitoring_files[0]))
    assert any(e.status == "exec_done" for e in loaded)
    with open(monitoring_files[0]) as handle:
        for line in handle:
            json.loads(line)  # every line is valid JSON
