"""Tests for CWLApp (paper §III-A)."""

from __future__ import annotations

import os

import pytest

import repro
from repro.core.cwl_app import CWLApp, cwl_tool_command
from repro.cwl.errors import InputValidationError, ValidationException
from repro.cwl.loader import load_tool
from repro.imaging.png import read_png
from repro.parsl.data_provider.files import File


def test_cwl_app_describe_and_introspection(cwl_dir):
    app = CWLApp(str(cwl_dir / "resize_image.cwl"))
    assert set(app.input_names) == {"input_image", "size", "output_image"}
    assert app.output_names == ["output_image"]
    assert set(app.required_inputs) == {"input_image", "size"}
    description = app.describe()
    assert description["baseCommand"][0] == "python3"
    assert description["inputs"]["size"] == "int"
    assert "CWLApp" in repr(app)


def test_cwl_app_accepts_loaded_tool_object(cwl_dir):
    tool = load_tool(cwl_dir / "echo.cwl")
    app = CWLApp(tool)
    assert app.input_names == ["message"]


def test_cwl_app_rejects_invalid_document(tmp_path):
    bad = tmp_path / "bad.cwl"
    bad.write_text("cwlVersion: v1.2\nclass: CommandLineTool\ninputs: {}\noutputs: {}\n")
    with pytest.raises(ValidationException):
        CWLApp(str(bad))


def test_unknown_and_missing_kwargs_fail_fast(cwl_dir, parsl_threads):
    app = CWLApp(str(cwl_dir / "resize_image.cwl"))
    with pytest.raises(InputValidationError, match="unknown input"):
        app(input_image="x.png", size=10, bogus=1)
    with pytest.raises(InputValidationError, match="missing required"):
        app(size=10)


def test_concrete_type_mismatch_fails_fast(cwl_dir, parsl_threads):
    app = CWLApp(str(cwl_dir / "resize_image.cwl"))
    with pytest.raises(InputValidationError, match="size"):
        app(input_image="in.png", size="big")


def test_echo_execution_and_datafutures(cwl_dir, parsl_threads, tmp_path):
    app = CWLApp(str(cwl_dir / "echo.cwl"))
    future = app(message="Hello, World!", stdout="hello.txt")
    assert future.result() == 0
    assert (tmp_path / "hello.txt").read_text().strip() == "Hello, World!"
    assert future.cwl_outputs["output"].result().filepath == "hello.txt"
    assert [df.filename for df in future.outputs] == ["hello.txt"]


def test_stdout_default_from_tool(cwl_dir, parsl_threads, tmp_path):
    app = CWLApp(str(cwl_dir / "echo.cwl"))
    future = app(message="default stdout")
    future.result()
    assert (tmp_path / "hello.txt").read_text().strip() == "default stdout"


def test_image_chain_through_datafutures(cwl_dir, parsl_threads, tmp_path, small_image):
    resize = CWLApp(str(cwl_dir / "resize_image.cwl"))
    blur = CWLApp(str(cwl_dir / "blur_image.cwl"))

    resized = resize(input_image=small_image, size=20, output_image="step1.png")
    blurred = blur(input_image=resized.outputs[0], radius=1, output_image="step2.png")
    assert blurred.result() == 0
    assert read_png(tmp_path / "step2.png").shape == (20, 20, 3)
    # The intermediate also exists and has the requested dimensions.
    assert read_png(tmp_path / "step1.png").shape == (20, 20, 3)


def test_file_inputs_accept_paths_files_and_cwl_dicts(cwl_dir, parsl_threads, tmp_path, small_image):
    resize = CWLApp(str(cwl_dir / "resize_image.cwl"))
    as_path = resize(input_image=small_image, size=8, output_image="a.png")
    as_file = resize(input_image=File(small_image), size=8, output_image="b.png")
    as_dict = resize(input_image={"class": "File", "path": small_image}, size=8,
                     output_image="c.png")
    for future in (as_path, as_file, as_dict):
        assert future.result() == 0
    assert {p.name for p in tmp_path.glob("*.png")} >= {"a.png", "b.png", "c.png"}


def test_predicted_outputs_use_input_defaults(cwl_dir, parsl_threads, tmp_path, small_image):
    blur = CWLApp(str(cwl_dir / "blur_image.cwl"))
    future = blur(input_image=small_image)  # radius and output_image use their defaults
    future.result()
    assert future.cwl_outputs["output_image"].filename == "blurred.png"
    assert (tmp_path / "blurred.png").exists()


def test_inline_python_argument_rewriting(cwl_dir, parsl_threads, tmp_path):
    app = CWLApp(str(cwl_dir / "capitalize_python.cwl"))
    future = app(message="the common workflow language", stdout="cap.txt")
    future.result()
    assert (tmp_path / "cap.txt").read_text().strip() == "The Common Workflow Language"


def test_inline_python_validate_blocks_bad_inputs(cwl_dir, parsl_threads, tmp_path):
    (tmp_path / "ok.csv").write_text("a,b\n")
    (tmp_path / "bad.json").write_text("{}")
    app = CWLApp(str(cwl_dir / "validate_csv.cwl"))

    good = app(data_file=str(tmp_path / "ok.csv"), stdout="good.txt")
    assert good.result() == 0

    bad = app(data_file=str(tmp_path / "bad.json"), stdout="bad.txt")
    with pytest.raises(Exception, match="Invalid file"):
        bad.result()


def test_cwl_tool_command_builds_command_without_parsl(cwl_dir, tmp_path):
    """The execution-side body is usable standalone (it is what workers run)."""
    tool = load_tool(cwl_dir / "echo.cwl")
    command = cwl_tool_command(tool.raw, tool.source_path, {"message": "direct"})
    assert command.startswith("echo ")
    assert "direct" in command


def test_cwl_app_works_on_htex(cwl_dir, parsl_htex_local, tmp_path):
    """CWLApps run identically on the HighThroughputExecutor (worker processes)."""
    app = CWLApp(str(cwl_dir / "echo.cwl"))
    future = app(message="from a worker process", stdout="htex.txt")
    assert future.result() == 0
    assert (tmp_path / "htex.txt").read_text().strip() == "from a worker process"
