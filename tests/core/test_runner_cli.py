"""Tests for run_tool_with_parsl and the parsl-cwl CLI (paper §III-B)."""

from __future__ import annotations

import json
import os

import pytest

import repro
from repro.core.cli import main as parsl_cwl_main
from repro.core.runner import run_tool_with_parsl
from repro.parsl.dataflow.dflow import DataFlowKernelLoader
from repro.parsl.errors import NoDataFlowKernelError
from repro.utils.yamlio import dump_yaml


def test_run_tool_with_explicit_config(cwl_dir, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    outputs = run_tool_with_parsl(
        tool=str(cwl_dir / "echo.cwl"),
        job_order={"message": "configured run"},
        config=repro.thread_config(max_threads=2, run_dir=str(tmp_path / "runinfo")),
    )
    assert outputs["output"]["basename"] == "hello.txt"
    with open(outputs["output"]["path"]) as handle:
        assert handle.read().strip() == "configured run"
    # The runner loaded the DFK itself, so it must also have cleaned it up.
    with pytest.raises(NoDataFlowKernelError):
        DataFlowKernelLoader.dfk()


def test_run_tool_with_yaml_config_path(cwl_dir, config_dir, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    outputs = run_tool_with_parsl(
        tool=str(cwl_dir / "echo.cwl"),
        job_order={"message": "yaml config"},
        config=str(config_dir / "local_threads.yml"),
    )
    with open(outputs["output"]["path"]) as handle:
        assert handle.read().strip() == "yaml config"


def test_run_tool_reuses_existing_dfk(cwl_dir, parsl_threads, tmp_path):
    outputs = run_tool_with_parsl(
        tool=str(cwl_dir / "echo.cwl"),
        job_order={"message": "reuse"},
    )
    assert outputs["output"]["basename"] == "hello.txt"
    # The pre-existing kernel must still be loaded afterwards.
    assert DataFlowKernelLoader.dfk() is parsl_threads


def test_run_tool_with_file_input(cwl_dir, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    data = tmp_path / "words.txt"
    data.write_text("one two three\n")
    outputs = run_tool_with_parsl(
        tool=str(cwl_dir / "wordcount.cwl"),
        job_order={"text_file": {"class": "File", "path": str(data)}},
        config=repro.thread_config(max_threads=2, run_dir=str(tmp_path / "runinfo")),
    )
    with open(outputs["count"]["path"]) as handle:
        assert handle.read().split()[0] == "3"


def test_parsl_cwl_cli_with_flag_inputs(cwl_dir, config_dir, tmp_path, capsys):
    exit_code = parsl_cwl_main([
        "--outdir", str(tmp_path), "--quiet",
        str(config_dir / "local_threads.yml"),
        str(cwl_dir / "echo.cwl"),
        "--message", "cli run",
    ])
    assert exit_code == 0
    outputs = json.loads(capsys.readouterr().out)
    assert outputs["output"]["basename"] == "hello.txt"
    assert (tmp_path / "hello.txt").read_text().strip() == "cli run"


def test_parsl_cwl_cli_with_job_order_file(cwl_dir, config_dir, tmp_path, capsys):
    job_file = tmp_path / "inputs.yml"
    job_file.write_text(dump_yaml({"message": "from inputs.yml"}))
    exit_code = parsl_cwl_main([
        "--outdir", str(tmp_path / "out"), "--quiet",
        str(config_dir / "local_threads.yml"),
        str(cwl_dir / "echo.cwl"),
        str(job_file),
    ])
    assert exit_code == 0
    assert (tmp_path / "out" / "hello.txt").read_text().strip() == "from inputs.yml"


def test_parsl_cwl_cli_usage_error(capsys):
    assert parsl_cwl_main([]) == 2
    assert "usage" in capsys.readouterr().err


def test_parsl_cwl_cli_reports_failures(cwl_dir, config_dir, tmp_path, capsys):
    exit_code = parsl_cwl_main([
        "--outdir", str(tmp_path), "--quiet",
        str(config_dir / "local_threads.yml"),
        str(cwl_dir / "resize_image.cwl"),          # missing required inputs
    ])
    assert exit_code == 1
    assert "error" in capsys.readouterr().err
