"""Tests for the TaPS-style YAML configuration loader."""

from __future__ import annotations

import pytest

from repro.cluster.nodes import NodeInventory
from repro.cluster.scheduler import SimulatedSlurmCluster
from repro.core.yaml_config import config_from_dict, load_yaml_config
from repro.parsl.errors import ConfigurationError
from repro.parsl.executors.high_throughput.executor import HighThroughputExecutor
from repro.parsl.executors.processes import ProcessPoolExecutor
from repro.parsl.executors.threads import ThreadPoolExecutor
from repro.parsl.executors.workqueue import WorkQueueStyleExecutor
from repro.parsl.providers.kubernetes import KubernetesProvider
from repro.parsl.providers.local import LocalProvider
from repro.parsl.providers.pbs import PBSProProvider
from repro.parsl.providers.slurm import SlurmProvider
from repro.utils.yamlio import dump_yaml


def test_thread_pool_config():
    config = config_from_dict({"executor": "thread-pool", "max_threads": 3, "retries": 2})
    executor = config.executors[0]
    assert isinstance(executor, ThreadPoolExecutor)
    assert executor.max_threads == 3
    assert config.retries == 2


def test_process_pool_and_workqueue_configs():
    procs = config_from_dict({"executor": "process-pool", "max_workers": 2})
    assert isinstance(procs.executors[0], ProcessPoolExecutor)
    wq = config_from_dict({"executor": "workqueue", "total_cores": 5})
    assert isinstance(wq.executors[0], WorkQueueStyleExecutor)
    assert wq.executors[0].total_cores == 5


def test_htex_local_provider_config():
    config = config_from_dict({"executor": "htex", "provider": "local",
                               "nodes": 1, "cores_per_node": 4, "workers_per_node": 2})
    executor = config.executors[0]
    assert isinstance(executor, HighThroughputExecutor)
    assert isinstance(executor.provider, LocalProvider)
    assert executor.max_workers_per_node == 2


def test_htex_slurm_provider_config_with_injected_cluster():
    cluster = SimulatedSlurmCluster(NodeInventory.homogeneous(3, cores=8))
    try:
        config = config_from_dict({"executor": "htex", "provider": "slurm", "nodes": 3,
                                   "cores_per_node": 8, "workers_per_node": 4,
                                   "partition": "debug"},
                                  cluster=cluster)
        provider = config.executors[0].provider
        assert isinstance(provider, SlurmProvider)
        assert provider.cluster is cluster
        assert provider.partition == "debug"
        assert provider.nodes_per_block == 3
    finally:
        cluster.shutdown()


def test_htex_pbs_and_kubernetes_providers():
    cluster = SimulatedSlurmCluster(NodeInventory.homogeneous(2, cores=4))
    try:
        pbs = config_from_dict({"executor": "htex", "provider": "pbs", "queue": "workq",
                                "nodes": 2, "cores_per_node": 4}, cluster=cluster)
        assert isinstance(pbs.executors[0].provider, PBSProProvider)
    finally:
        cluster.shutdown()
    k8s = config_from_dict({"executor": "htex", "provider": "kubernetes", "nodes": 2,
                            "cores_per_node": 2, "namespace": "workflows"})
    assert isinstance(k8s.executors[0].provider, KubernetesProvider)
    assert k8s.executors[0].provider.namespace == "workflows"


def test_executor_aliases_accepted():
    for alias in ("threads", "threadpool", "high-throughput", "taskvine"):
        config = config_from_dict({"executor": alias})
        assert config.executors, alias


def test_unknown_key_rejected():
    with pytest.raises(ConfigurationError):
        config_from_dict({"executor": "thread-pool", "workers_per_nod": 3})


def test_unknown_executor_and_provider_rejected():
    with pytest.raises(ConfigurationError):
        config_from_dict({"executor": "quantum"})
    with pytest.raises(ConfigurationError):
        config_from_dict({"executor": "htex", "provider": "lsf"})


def test_load_yaml_config_from_file(tmp_path):
    path = tmp_path / "config.yml"
    path.write_text(dump_yaml({"executor": "thread-pool", "max_threads": 6, "run_dir": "rd"}))
    config = load_yaml_config(path)
    assert config.executors[0].max_threads == 6
    assert config.run_dir == "rd"


def test_load_yaml_config_empty_file_gives_defaults(tmp_path):
    path = tmp_path / "empty.yml"
    path.write_text("")
    config = load_yaml_config(path)
    assert isinstance(config.executors[0], ThreadPoolExecutor)


def test_load_yaml_config_non_mapping_rejected(tmp_path):
    path = tmp_path / "bad.yml"
    path.write_text("- a\n- b\n")
    with pytest.raises(ConfigurationError):
        load_yaml_config(path)


def test_example_config_files_parse(config_dir):
    threads = load_yaml_config(config_dir / "local_threads.yml")
    assert isinstance(threads.executors[0], ThreadPoolExecutor)
    htex_local = load_yaml_config(config_dir / "htex_local.yml")
    assert isinstance(htex_local.executors[0], HighThroughputExecutor)
    cluster = SimulatedSlurmCluster(NodeInventory.homogeneous(3, cores=48))
    try:
        htex_slurm = load_yaml_config(config_dir / "htex_slurm_3nodes.yml", cluster=cluster)
        assert htex_slurm.executors[0].provider.nodes_per_block == 3
    finally:
        cluster.shutdown()
