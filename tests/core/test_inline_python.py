"""Tests for InlinePythonRequirement support (paper §V)."""

from __future__ import annotations

import pytest

from repro.core.inline_python import (
    InlinePythonEvaluator,
    InlinePythonRequirementError,
    extract_inline_python,
    is_python_expression,
)
from repro.cwl.errors import InputValidationError
from repro.cwl.loader import load_document, load_tool


CAPITALIZE_LIB = [
    "def capitalize_words(message):\n    return message.title()\n",
]

CONTEXT = {"inputs": {"message": "hello brave new world", "n": 3,
                      "data_file": {"class": "File", "path": "/data/table.csv",
                                    "basename": "table.csv"}},
           "runtime": {"cores": 2}, "self": None}


def test_is_python_expression_detection():
    assert is_python_expression('f"{capitalize_words($(inputs.message))}"')
    assert is_python_expression("f'{1 + 1}'")
    assert not is_python_expression("$(inputs.message)")
    assert not is_python_expression("plain text")
    assert not is_python_expression(42)


def test_extract_inline_python_from_example(cwl_dir):
    tool = load_tool(cwl_dir / "capitalize_python.cwl")
    requirement = extract_inline_python(tool)
    assert requirement is not None
    assert "capitalize_words" in requirement["expressionLib"][0]


def test_expression_lib_functions_defined():
    evaluator = InlinePythonEvaluator(expression_lib=CAPITALIZE_LIB)
    assert "capitalize_words" in evaluator.defined_names()


def test_evaluate_fstring_with_parameter_reference():
    evaluator = InlinePythonEvaluator(expression_lib=CAPITALIZE_LIB)
    result = evaluator.evaluate('f"{capitalize_words($(inputs.message))}"', CONTEXT)
    assert result == "Hello Brave New World"


def test_evaluate_single_field_preserves_native_type():
    evaluator = InlinePythonEvaluator()
    assert evaluator.evaluate('f"{$(inputs.n) * 2}"', CONTEXT) == 6


def test_evaluate_mixed_text_interpolates():
    evaluator = InlinePythonEvaluator()
    assert evaluator.evaluate('f"count={$(inputs.n) + 1} cores={$(runtime.cores)}"', CONTEXT) == \
        "count=4 cores=2"


def test_evaluate_bare_reference_and_plain_string():
    evaluator = InlinePythonEvaluator()
    assert evaluator.evaluate("$(inputs.n)", CONTEXT) == 3
    assert evaluator.evaluate("no references", CONTEXT) == "no references"
    assert evaluator.evaluate("n is $(inputs.n)", CONTEXT) == "n is 3"


def test_inputs_namespace_accessible_directly():
    evaluator = InlinePythonEvaluator()
    assert evaluator.evaluate('f"{inputs[\'message\'].split()[0]}"', CONTEXT) == "hello"


def test_expression_error_wrapped():
    evaluator = InlinePythonEvaluator()
    with pytest.raises(InlinePythonRequirementError):
        evaluator.evaluate('f"{undefined_function(1)}"', CONTEXT)


def test_expression_lib_syntax_error_reported():
    with pytest.raises(InlinePythonRequirementError):
        InlinePythonEvaluator(expression_lib=["def broken(:\n    pass"])


def test_external_python_file_loaded(tmp_path):
    module = tmp_path / "helpers.py"
    module.write_text("def shout(text):\n    return text.upper() + '!'\n")
    evaluator = InlinePythonEvaluator(external_files=[str(module)])
    assert evaluator.evaluate('f"{shout($(inputs.message))}"', CONTEXT) == \
        "HELLO BRAVE NEW WORLD!"


def test_external_python_file_missing_reported(tmp_path):
    with pytest.raises(InlinePythonRequirementError):
        InlinePythonEvaluator(external_files=[str(tmp_path / "absent.py")])


def test_brace_blocks_rejected_inside_python_expressions():
    evaluator = InlinePythonEvaluator()
    with pytest.raises(InlinePythonRequirementError):
        evaluator.evaluate('f"{1 + ${ return 2; }}"', CONTEXT)


def test_validate_inputs_pass_and_fail(cwl_dir):
    tool = load_tool(cwl_dir / "validate_csv.cwl")
    evaluator = InlinePythonEvaluator.from_process(tool)

    good = {"data_file": {"class": "File", "path": "/data/values.csv", "basename": "values.csv"}}
    evaluator.validate_inputs(tool, good)  # should not raise

    bad = {"data_file": {"class": "File", "path": "/data/values.txt", "basename": "values.txt"}}
    with pytest.raises((InputValidationError, InlinePythonRequirementError)):
        evaluator.validate_inputs(tool, bad)


def test_validate_skipped_when_no_validate_fields(cwl_dir):
    tool = load_tool(cwl_dir / "echo.cwl")
    InlinePythonEvaluator.from_process(tool).validate_inputs(tool, {"message": "x"})


def test_conditional_default_use_case():
    """The paper lists 'conditional defaults' as a use case: derive a value from other inputs."""
    lib = ["def default_output(name, ext):\n    return name.rsplit('.', 1)[0] + ext\n"]
    evaluator = InlinePythonEvaluator(expression_lib=lib)
    context = {"inputs": {"data_file": {"basename": "run42.csv"}}, "runtime": {}, "self": None}
    result = evaluator.evaluate(
        'f"{default_output($(inputs.data_file.basename), \'.json\')}"', context)
    assert result == "run42.json"
