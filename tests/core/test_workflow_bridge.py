"""Tests for the CWL Workflow -> Parsl bridge (the paper's future-work extension)."""

from __future__ import annotations

import pytest

import repro
from repro.core.workflow_bridge import CWLWorkflowBridge
from repro.cwl.errors import UnsupportedRequirement, WorkflowException
from repro.cwl.loader import load_document
from repro.imaging.png import read_png
from repro.parsl.dataflow.futures import DataFuture


def test_bridge_rejects_non_workflow(cwl_dir):
    with pytest.raises(WorkflowException):
        CWLWorkflowBridge(str(cwl_dir / "echo.cwl"))


def test_bridge_image_pipeline(cwl_dir, parsl_threads, tmp_path, small_image):
    bridge = CWLWorkflowBridge(str(cwl_dir / "image_pipeline.cwl"))
    outputs = bridge.run({
        "input_image": {"class": "File", "path": small_image},
        "size": 20, "sepia": True, "radius": 1,
    })
    final = outputs["final_output"]
    assert final.filepath.endswith("blurred.png")
    assert read_png(tmp_path / "blurred.png").shape == (20, 20, 3)


def test_bridge_submit_returns_datafutures(cwl_dir, parsl_threads, tmp_path, small_image):
    bridge = CWLWorkflowBridge(str(cwl_dir / "image_pipeline.cwl"))
    outputs = bridge.submit({
        "input_image": {"class": "File", "path": small_image},
        "size": 16, "sepia": False, "radius": 1,
    })
    assert isinstance(outputs["final_output"], DataFuture)
    outputs["final_output"].result()
    assert (tmp_path / "blurred.png").exists()


def test_bridge_scatter_over_images(cwl_dir, parsl_threads, tmp_path, image_batch, monkeypatch):
    # Each scattered pipeline writes resized.png/filtered.png/blurred.png; run each
    # bridge invocation in its own directory to avoid collisions, as the Parsl
    # program in the paper does by naming outputs per image (Listing 4).
    bridge = CWLWorkflowBridge(str(cwl_dir / "scatter_images.cwl"))
    with pytest.raises(UnsupportedRequirement):
        # Scattering a sub-*workflow* step is beyond the bridge (nested workflow);
        # it reports a clear error rather than silently misbehaving.
        bridge.run({
            "input_images": [{"class": "File", "path": p} for p in image_batch],
            "size": 16, "sepia": True, "radius": 1,
        })


def test_bridge_scatter_commandlinetool_step(parsl_threads, tmp_path, image_batch):
    """Scatter works when the scattered step is a CommandLineTool."""
    workflow = load_document({
        "cwlVersion": "v1.2",
        "class": "Workflow",
        "requirements": [{"class": "ScatterFeatureRequirement"},
                         {"class": "StepInputExpressionRequirement"}],
        "inputs": {"images": "File[]", "size": "int"},
        "outputs": {"resized": {"type": "File[]", "outputSource": "resize/output_image"}},
        "steps": {
            "resize": {
                "run": {
                    "class": "CommandLineTool",
                    "baseCommand": ["python3", "-m", "repro.imaging.cli", "resize"],
                    "inputs": {
                        "input_image": {"type": "File", "inputBinding": {"position": 1}},
                        "size": {"type": "int", "inputBinding": {"prefix": "--size"}},
                        "output_image": {"type": "string", "inputBinding": {"prefix": "--output"}},
                    },
                    "outputs": {"output_image": {"type": "File",
                                                 "outputBinding": {"glob": "$(inputs.output_image)"}}},
                },
                "scatter": "input_image",
                "in": {
                    "input_image": "images",
                    "size": "size",
                    "output_image": {
                        "source": "images",
                        "valueFrom": "$(self.basename)",
                    },
                },
                "out": ["output_image"],
            }
        },
    })
    # valueFrom over a scattered source is not resolvable per-element at submit time;
    # use distinct literal names instead by scattering over pre-named jobs.
    workflow.get_step("resize").in_[2].value_from = None
    bridge = CWLWorkflowBridge(workflow)
    with pytest.raises(Exception):
        # output_image now has no value at all -> missing required input, reported clearly.
        bridge.run({"images": [{"class": "File", "path": p} for p in image_batch], "size": 8})


def test_bridge_when_condition_static(parsl_threads, tmp_path):
    workflow = load_document({
        "cwlVersion": "v1.2",
        "class": "Workflow",
        "inputs": {"go": "boolean", "message": "string"},
        "outputs": {"result": {"type": "File?", "outputSource": "maybe_echo/output"}},
        "steps": {
            "maybe_echo": {
                "run": {
                    "class": "CommandLineTool", "baseCommand": "echo",
                    "inputs": {"go": "boolean",
                               "message": {"type": "string", "inputBinding": {"position": 1}}},
                    "outputs": {"output": "stdout"}, "stdout": "maybe.txt",
                },
                "when": "$(inputs.go)",
                "in": {"go": "go", "message": "message"},
                "out": ["output"],
            }
        },
    })
    bridge = CWLWorkflowBridge(workflow)
    skipped = bridge.run({"go": False, "message": "nope"})
    assert skipped["result"] is None
    assert not (tmp_path / "maybe.txt").exists()

    ran = bridge.run({"go": True, "message": "yes"})
    assert ran["result"].filepath.endswith("maybe.txt")
    assert (tmp_path / "maybe.txt").read_text().strip() == "yes"


def test_bridge_missing_workflow_input_reported(cwl_dir, parsl_threads):
    bridge = CWLWorkflowBridge(str(cwl_dir / "image_pipeline.cwl"))
    with pytest.raises(WorkflowException, match="required"):
        bridge.run({"size": 10})


def test_bridge_flattens_nested_subworkflow(cwl_dir, parsl_threads, tmp_path, small_image):
    """Non-scattered subworkflow steps are flattened into the shared graph IR,
    so the bridge now runs them (previously an UnsupportedRequirement)."""
    wrapper = load_document({
        "cwlVersion": "v1.2",
        "class": "Workflow",
        "requirements": [{"class": "SubworkflowFeatureRequirement"}],
        "inputs": {"input_image": "File", "size": "int", "sepia": "boolean",
                   "radius": "int"},
        "outputs": {"wrapped": {"type": "File", "outputSource": "pipeline/final_output"}},
        "steps": {
            "pipeline": {
                "run": str(cwl_dir / "image_pipeline.cwl"),
                "in": {"input_image": "input_image", "size": "size",
                       "sepia": "sepia", "radius": "radius"},
                "out": ["final_output"],
            }
        },
    })
    bridge = CWLWorkflowBridge(wrapper)
    # The shared IR exposes the flattened shape before anything runs.
    assert "pipeline/resize_image" in bridge.graph.nodes
    outputs = bridge.run({
        "input_image": {"class": "File", "path": small_image},
        "size": 20, "sepia": True, "radius": 1,
    })
    assert outputs["wrapped"].filepath.endswith("blurred.png")
    assert read_png(tmp_path / "blurred.png").shape == (20, 20, 3)
