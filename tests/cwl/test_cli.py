"""Tests for the repro-cwltool and repro-toil-cwl-runner CLIs."""

from __future__ import annotations

import json

import pytest

from repro.cwl.cli import cwltool_main, parse_cli_inputs, parse_job_order, toil_main
from repro.utils.yamlio import dump_yaml


def test_parse_cli_inputs_forms():
    parsed = parse_cli_inputs(["--message", "hello", "--count=3", "--rate", "0.5",
                               "--flag", "true", "--bare"])
    assert parsed == {"message": "hello", "count": 3, "rate": 0.5, "flag": True, "bare": True}


def test_parse_cli_inputs_rejects_positional():
    with pytest.raises(ValueError):
        parse_cli_inputs(["oops"])


def test_parse_job_order_merges_file_and_overrides(tmp_path):
    job_file = tmp_path / "job.yml"
    job_file.write_text(dump_yaml({"message": "from file", "count": 1}))
    merged = parse_job_order(str(job_file), ["--count", "2"])
    assert merged == {"message": "from file", "count": 2}


def test_parse_job_order_rejects_non_mapping(tmp_path):
    job_file = tmp_path / "job.yml"
    job_file.write_text("- just\n- a\n- list\n")
    with pytest.raises(ValueError):
        parse_job_order(str(job_file), [])


def test_cwltool_main_runs_tool(cwl_dir, tmp_path, capsys):
    exit_code = cwltool_main(["--outdir", str(tmp_path), "--quiet",
                              str(cwl_dir / "echo.cwl"), "--message", "cli hello"])
    assert exit_code == 0
    outputs = json.loads(capsys.readouterr().out)
    assert outputs["output"]["basename"] == "hello.txt"
    with open(outputs["output"]["path"]) as handle:
        assert handle.read().strip() == "cli hello"


def test_cwltool_main_with_job_order_file(cwl_dir, tmp_path, capsys):
    job_file = tmp_path / "inputs.yml"
    job_file.write_text(dump_yaml({"message": "yaml order"}))
    exit_code = cwltool_main(["--outdir", str(tmp_path), "--quiet",
                              str(cwl_dir / "echo.cwl"), str(job_file)])
    assert exit_code == 0
    outputs = json.loads(capsys.readouterr().out)
    with open(outputs["output"]["path"]) as handle:
        assert handle.read().strip() == "yaml order"


def test_cwltool_main_workflow_parallel(cwl_dir, tmp_path, small_image, capsys):
    job_file = tmp_path / "job.yml"
    job_file.write_text(dump_yaml({
        "input_image": {"class": "File", "path": small_image},
        "size": 16, "sepia": True, "radius": 1,
    }))
    exit_code = cwltool_main(["--parallel", "--outdir", str(tmp_path / "out"), "--quiet",
                              str(cwl_dir / "image_pipeline.cwl"), str(job_file)])
    assert exit_code == 0
    outputs = json.loads(capsys.readouterr().out)
    assert outputs["final_output"]["basename"] == "blurred.png"


def test_cwltool_main_reports_errors(cwl_dir, tmp_path, capsys):
    exit_code = cwltool_main([str(cwl_dir / "resize_image.cwl")])  # missing required inputs
    assert exit_code == 1
    assert "error" in capsys.readouterr().err


def test_toil_main_single_machine(cwl_dir, tmp_path, capsys):
    exit_code = toil_main(["--outdir", str(tmp_path), "--jobStore", str(tmp_path / "js"),
                           "--quiet", str(cwl_dir / "echo.cwl"), "--message", "toil cli"])
    assert exit_code == 0
    outputs = json.loads(capsys.readouterr().out)
    with open(outputs["output"]["path"]) as handle:
        assert handle.read().strip() == "toil cli"


def test_toil_main_error_path(tmp_path, capsys):
    exit_code = toil_main([str(tmp_path / "missing.cwl")])
    assert exit_code == 1
    assert "error" in capsys.readouterr().err
