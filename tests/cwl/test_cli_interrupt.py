"""CLI interrupt handling: SIGTERM/SIGINT still tear down, runs stay resumable.

Runs ``repro-cwltool`` in a real subprocess, interrupts it mid-job, and
asserts the contract: exit code 130, the in-flight tool subprocess is
reaped, tracked scratch directories are removed, the journal survives, and
``--resume`` finishes the run.
"""

from __future__ import annotations

import glob
import json
import os
import signal
import subprocess
import sys
import time

import pytest

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "src")

#: Unique sleep duration so /proc scans cannot collide with anything else.
SLEEP_MARKER = "28731"

CLI_STUB = ("import sys; from repro.cwl.cli import cwltool_main; "
            "sys.exit(cwltool_main(sys.argv[1:]))")


def interruptible_workflow() -> dict:
    """echo → a step that sleeps forever until its gate file exists."""
    slow_script = f'test -e "$1" || sleep {SLEEP_MARKER}; wc -c < "$2"'
    return {
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"message": "string", "gate": "string"},
        "outputs": {"count": {"type": "File", "outputSource": "slow/out"}},
        "steps": {
            "shout": {"run": {"class": "CommandLineTool", "id": "shout-tool",
                              "baseCommand": "echo",
                              "inputs": {"message": {"type": "string",
                                                     "inputBinding": {"position": 1}}},
                              "outputs": {"out": "stdout"},
                              "stdout": "shout.txt"},
                      "in": {"message": "message"}, "out": ["out"]},
            "slow": {"run": {"class": "CommandLineTool", "id": "slow-tool",
                             "baseCommand": ["sh", "-c", slow_script, "sh"],
                             "inputs": {"gate": {"type": "string",
                                                 "inputBinding": {"position": 1}},
                                        "data": {"type": "File",
                                                 "inputBinding": {"position": 2}}},
                             "outputs": {"out": "stdout"},
                             "stdout": "count.txt"},
                     "in": {"gate": "gate", "data": "shout/out"},
                     "out": ["out"]},
        },
    }


def sleeping_tool_pids() -> list:
    """PIDs of live ``sleep <marker>`` processes."""
    pids = []
    for proc_dir in glob.glob("/proc/[0-9]*"):
        try:
            with open(os.path.join(proc_dir, "cmdline"), "rb") as handle:
                cmdline = handle.read().split(b"\0")
        except OSError:
            continue
        if b"sleep" in cmdline and SLEEP_MARKER.encode() in cmdline:
            pids.append(int(os.path.basename(proc_dir)))
    return pids


def wait_for(predicate, timeout_s=30.0, message="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.1)
    pytest.fail(f"timed out waiting for {message}")


@pytest.fixture
def staged_run(tmp_path):
    """Paths for one interruptible journalled CLI run."""
    # A crashed earlier run may have orphaned marker sleeps; they would make
    # the reap assertion below fail forever, so clear them first.
    for pid in sleeping_tool_pids():
        try:
            os.kill(pid, signal.SIGKILL)
        except OSError:
            pass
    doc = tmp_path / "wf.cwl"
    doc.write_text(json.dumps(interruptible_workflow()))
    order = tmp_path / "job.json"
    order.write_text(json.dumps({"message": "interrupt me",
                                 "gate": str(tmp_path / "gate")}))
    scratch = tmp_path / "scratch"
    scratch.mkdir()
    env = dict(os.environ,
               PYTHONPATH=SRC_DIR + os.pathsep + os.environ.get("PYTHONPATH", ""),
               TMPDIR=str(scratch))
    return {"doc": doc, "order": order, "tmp": tmp_path,
            "rundir": tmp_path / "run", "scratch": scratch, "env": env}


def launch(staged, *extra_args):
    return subprocess.Popen(
        [sys.executable, "-c", CLI_STUB, "--rundir", str(staged["rundir"]),
         *extra_args, str(staged["doc"]), str(staged["order"])],
        env=staged["env"], cwd=str(staged["tmp"]),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_interrupt_tears_down_and_leaves_a_resumable_run(staged_run, signum):
    proc = launch(staged_run)
    try:
        # Let the first step finish and the sleeper actually start.
        wait_for(lambda: sleeping_tool_pids(),
                 message="the slow step's sleep subprocess")
        journal = staged_run["rundir"] / "journal.jsonl"
        wait_for(journal.exists, message="the journal file")

        proc.send_signal(signum)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    stderr = proc.stderr.read()

    assert proc.returncode == 130, stderr
    assert "interrupted" in stderr
    assert "--resume" in stderr  # the resume hint names the flags to use

    # The in-flight tool subprocess was reaped, not orphaned.
    wait_for(lambda: not sleeping_tool_pids(),
             message="the sleep subprocess to be reaped")
    # Tracked scratch directories were torn down by RuntimeContext.close().
    assert glob.glob(os.path.join(str(staged_run["scratch"]), "cwl-tmp-*")) == []

    # The journal survived with the completed step recorded.
    from repro.cwl.journal import node_states, read_journal

    states = node_states(read_journal(str(staged_run["rundir"])))
    assert any(state == "done" for state in states.values())

    # Open the gate and resume: the run completes without re-sleeping.
    (staged_run["tmp"] / "gate").write_text("open")
    resumed = launch(staged_run, "--resume")
    out, err = resumed.communicate(timeout=60)
    assert resumed.returncode == 0, err
    outputs = json.loads(out)
    with open(outputs["count"]["path"]) as handle:
        assert handle.read().strip() == "13"  # wc -c of "interrupt me\n"
