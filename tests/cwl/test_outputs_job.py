"""Tests for output collection and single-tool job execution."""

from __future__ import annotations

import os

import pytest

from repro.cwl.errors import InputValidationError, JobFailure, OutputCollectionError
from repro.cwl.job import CommandLineJob
from repro.cwl.loader import load_document, load_tool
from repro.cwl.outputs import collect_output, collect_outputs
from repro.cwl.runtime import RuntimeContext
from repro.cwl.schema import CommandOutputParameter

RUNTIME = {"outdir": "/out", "tmpdir": "/tmp", "cores": 1, "ram": 1024}


# ------------------------------------------------------------- output collection


def test_collect_stdout_output(tmp_path):
    stdout_file = tmp_path / "captured.txt"
    stdout_file.write_text("result")
    param = CommandOutputParameter.from_dict("out", "stdout")
    value = collect_output(param, str(tmp_path), str(stdout_file), None, {}, RUNTIME)
    assert value["class"] == "File"
    assert value["basename"] == "captured.txt"
    assert value["size"] == 6


def test_collect_stdout_missing_file_raises(tmp_path):
    param = CommandOutputParameter.from_dict("out", "stdout")
    with pytest.raises(OutputCollectionError):
        collect_output(param, str(tmp_path), None, None, {}, RUNTIME)


def test_collect_glob_literal_and_expression(tmp_path):
    (tmp_path / "result.txt").write_text("x")
    literal = CommandOutputParameter.from_dict(
        "o1", {"type": "File", "outputBinding": {"glob": "result.txt"}})
    reference = CommandOutputParameter.from_dict(
        "o2", {"type": "File", "outputBinding": {"glob": "$(inputs.name)"}})
    assert collect_output(literal, str(tmp_path), None, None, {}, RUNTIME)["basename"] == "result.txt"
    assert collect_output(reference, str(tmp_path), None, None,
                          {"name": "result.txt"}, RUNTIME)["basename"] == "result.txt"


def test_collect_glob_array_output(tmp_path):
    for name in ("b.log", "a.log"):
        (tmp_path / name).write_text(name)
    param = CommandOutputParameter.from_dict(
        "logs", {"type": "File[]", "outputBinding": {"glob": "*.log"}})
    values = collect_output(param, str(tmp_path), None, None, {}, RUNTIME)
    assert [v["basename"] for v in values] == ["a.log", "b.log"]


def test_collect_glob_load_contents(tmp_path):
    (tmp_path / "small.txt").write_text("contents!")
    param = CommandOutputParameter.from_dict(
        "o", {"type": "File", "outputBinding": {"glob": "small.txt", "loadContents": True}})
    assert collect_output(param, str(tmp_path), None, None, {}, RUNTIME)["contents"] == "contents!"


def test_collect_output_eval_transforms_matches(tmp_path):
    (tmp_path / "count.txt").write_text("17\n")
    param = CommandOutputParameter.from_dict(
        "n", {"type": "int",
              "outputBinding": {"glob": "count.txt", "loadContents": True,
                                "outputEval": "$(parseInt(self[0].contents))"}})
    assert collect_output(param, str(tmp_path), None, None, {}, RUNTIME) == 17


def test_collect_missing_required_output_raises(tmp_path):
    param = CommandOutputParameter.from_dict(
        "must", {"type": "File", "outputBinding": {"glob": "nope.txt"}})
    with pytest.raises(OutputCollectionError):
        collect_output(param, str(tmp_path), None, None, {}, RUNTIME)


def test_collect_optional_output_absent_is_none(tmp_path):
    param = CommandOutputParameter.from_dict(
        "maybe", {"type": "File?", "outputBinding": {"glob": "nope.txt"}})
    assert collect_output(param, str(tmp_path), None, None, {}, RUNTIME) is None


def test_collect_outputs_for_whole_tool(tmp_path, cwl_dir):
    tool = load_tool(cwl_dir / "resize_image.cwl")
    (tmp_path / "resized.png").write_bytes(b"png-bytes")
    outputs = collect_outputs(tool, str(tmp_path), None, None,
                              {"output_image": "resized.png"}, RUNTIME)
    assert outputs["output_image"]["basename"] == "resized.png"


# ----------------------------------------------------------------- job execution


def test_command_line_job_execute_echo(cwl_dir, tmp_path):
    tool = load_tool(cwl_dir / "echo.cwl")
    job = CommandLineJob(tool, {"message": "from the job test"},
                         RuntimeContext(basedir=str(tmp_path)))
    result = job.execute()
    assert result.exit_code == 0
    assert result.outputs["output"]["basename"] == "hello.txt"
    with open(result.outputs["output"]["path"]) as handle:
        assert handle.read().strip() == "from the job test"


def test_command_line_job_uses_defaults(cwl_dir, tmp_path):
    tool = load_tool(cwl_dir / "echo.cwl")
    job = CommandLineJob(tool, {}, RuntimeContext(basedir=str(tmp_path)))
    result = job.execute()
    with open(result.outputs["output"]["path"]) as handle:
        assert handle.read().strip() == "Hello World"


def test_command_line_job_validation_errors(cwl_dir, tmp_path):
    tool = load_tool(cwl_dir / "resize_image.cwl")
    missing = CommandLineJob(tool, {}, RuntimeContext(basedir=str(tmp_path)))
    problems = missing.validate_inputs()
    assert any("input_image" in p for p in problems)
    with pytest.raises(InputValidationError):
        missing.execute()

    wrong_type = CommandLineJob(tool, {"input_image": {"class": "File", "path": "/x.png"},
                                       "size": "not-an-int"},
                                RuntimeContext(basedir=str(tmp_path)))
    assert any("size" in p for p in wrong_type.validate_inputs())


def test_command_line_job_unknown_input_reported(cwl_dir, tmp_path):
    tool = load_tool(cwl_dir / "echo.cwl")
    job = CommandLineJob(tool, {"message": "x", "bogus": 1}, RuntimeContext(basedir=str(tmp_path)))
    assert any("bogus" in p for p in job.validate_inputs())


def test_command_line_job_failure_raises(tmp_path):
    tool = load_document({
        "cwlVersion": "v1.2", "class": "CommandLineTool",
        "baseCommand": ["false"], "inputs": {}, "outputs": {},
    })
    job = CommandLineJob(tool, {}, RuntimeContext(basedir=str(tmp_path)))
    with pytest.raises(JobFailure):
        job.execute()


def test_command_line_job_success_codes_respected(tmp_path):
    tool = load_document({
        "cwlVersion": "v1.2", "class": "CommandLineTool",
        "baseCommand": ["bash", "-c", "exit 3"], "successCodes": [0, 3],
        "inputs": {}, "outputs": {},
    })
    result = CommandLineJob(tool, {}, RuntimeContext(basedir=str(tmp_path))).execute()
    assert result.exit_code == 3


def test_command_line_job_env_requirement(tmp_path):
    tool = load_document({
        "cwlVersion": "v1.2", "class": "CommandLineTool",
        "baseCommand": ["bash", "-c", "echo $GREETING"],
        "requirements": [{"class": "EnvVarRequirement", "envDef": {"GREETING": "salut"}}],
        "inputs": {}, "outputs": {"out": "stdout"}, "stdout": "env.txt",
    })
    result = CommandLineJob(tool, {}, RuntimeContext(basedir=str(tmp_path))).execute()
    with open(result.outputs["out"]["path"]) as handle:
        assert handle.read().strip() == "salut"


def test_command_line_job_build_only(cwl_dir, tmp_path):
    tool = load_tool(cwl_dir / "blur_image.cwl")
    job = CommandLineJob(tool, {"input_image": {"class": "File", "path": "/img/in.png"},
                                "radius": 3},
                         RuntimeContext(basedir=str(tmp_path), outdir=str(tmp_path)))
    parts = job.build()
    assert parts.argv[:4] == ["python3", "-m", "repro.imaging.cli", "blur"]
    assert "--radius" in parts.argv and "3" in parts.argv
    assert "/img/in.png" in parts.argv


def test_image_tool_executes_fully(cwl_dir, tmp_path, small_image):
    tool = load_tool(cwl_dir / "resize_image.cwl")
    job = CommandLineJob(
        tool,
        {"input_image": {"class": "File", "path": small_image}, "size": 16,
         "output_image": "tiny.png"},
        RuntimeContext(basedir=str(tmp_path), compute_checksum=True),
    )
    result = job.execute()
    out = result.outputs["output_image"]
    assert out["basename"] == "tiny.png"
    assert out["checksum"].startswith("sha1$")
    from repro.imaging.png import read_png

    assert read_png(out["path"]).shape == (16, 16, 3)
