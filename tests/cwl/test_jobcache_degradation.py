"""Cache degradation: damaged store artifacts quarantine, never replay.

A shared store lives on real disks: bodies get truncated by full volumes,
bit-flipped by hardware, manifests torn by killed writers.  The contract
under test — damage is *quarantined* (moved to ``*.corrupt``), the lookup
becomes an ordinary miss, the job re-executes with correct outputs, and the
re-execution re-publishes a fresh artifact so the next run hits again.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro import api
from repro.cwl.faults import FaultPlan
from repro.cwl.loader import load_document
from repro.cwl.runtime import RuntimeContext


def echo_tool() -> dict:
    return {
        "class": "CommandLineTool", "baseCommand": "echo",
        "inputs": {"message": {"type": "string",
                               "inputBinding": {"position": 1}}},
        "outputs": {"out": "stdout"}, "stdout": "echoed.txt",
    }


def run_once(store, workdir, message="quarantine me"):
    workdir.mkdir(parents=True, exist_ok=True)
    return api.run(load_document(echo_tool()), {"message": message},
                   engine="reference", cache_dir=str(store),
                   runtime_context=RuntimeContext(basedir=str(workdir)))


def output_bytes(result) -> bytes:
    with open(result.outputs["out"]["path"], "rb") as handle:
        return handle.read()


def corrupt_artifacts(store) -> list:
    return sorted(glob.glob(os.path.join(str(store), "**", "*.corrupt"),
                            recursive=True))


@pytest.fixture
def warm_store(tmp_path):
    """A store holding one cached echo job, plus the cold run's output bytes.

    The bytes are snapshotted *before* any test damages the store: staged
    outputs are hardlinks into the CAS, so vandalising a body in place also
    rewrites the cold run's output file.
    """
    store = tmp_path / "store"
    cold = run_once(store, tmp_path / "cold")
    assert cold.cache_stats == {"hits": 0, "misses": 1}
    return store, output_bytes(cold)


def test_bit_flipped_cas_body_quarantines_and_repairs(tmp_path, warm_store):
    store, expected = warm_store
    bodies = sorted(glob.glob(os.path.join(str(store), "cas", "*")))
    assert bodies
    FaultPlan.corrupt_file(bodies[0])  # same size, different content

    repaired = run_once(store, tmp_path / "repair")
    # The damaged entry was a miss, not a replay of corrupt data.
    assert repaired.cache_stats == {"hits": 0, "misses": 1}
    assert output_bytes(repaired) == expected
    quarantined = corrupt_artifacts(store)
    assert quarantined, "damaged artifacts should be kept as *.corrupt"
    assert any(os.sep + "cas" + os.sep in path for path in quarantined)

    # The miss re-published: the store is warm again.
    warm = run_once(store, tmp_path / "rewarm")
    assert warm.cache_stats == {"hits": 1, "misses": 0}
    assert output_bytes(warm) == expected


def test_truncated_cas_body_quarantines_and_repairs(tmp_path, warm_store):
    store, expected = warm_store
    FaultPlan.truncate_cas_body(str(store))

    repaired = run_once(store, tmp_path / "repair")
    assert repaired.cache_stats == {"hits": 0, "misses": 1}
    assert output_bytes(repaired) == expected
    assert corrupt_artifacts(store)

    warm = run_once(store, tmp_path / "rewarm")
    assert warm.cache_stats == {"hits": 1, "misses": 0}


def test_unparseable_manifest_quarantines_and_repairs(tmp_path, warm_store):
    store, expected = warm_store
    manifests = sorted(glob.glob(os.path.join(str(store), "entries", "*.json")))
    assert manifests
    with open(manifests[0], "w", encoding="utf-8") as handle:
        handle.write('{"version": 1, "files": {torn')  # killed mid-write

    repaired = run_once(store, tmp_path / "repair")
    assert repaired.cache_stats == {"hits": 0, "misses": 1}
    assert output_bytes(repaired) == expected
    assert any(path.endswith(".json.corrupt")
               for path in corrupt_artifacts(store))

    warm = run_once(store, tmp_path / "rewarm")
    assert warm.cache_stats == {"hits": 1, "misses": 0}


def test_deleted_cas_body_is_a_clean_miss(tmp_path, warm_store):
    store, expected = warm_store
    for body in glob.glob(os.path.join(str(store), "cas", "*")):
        os.unlink(body)

    repaired = run_once(store, tmp_path / "repair")
    assert repaired.cache_stats == {"hits": 0, "misses": 1}
    assert output_bytes(repaired) == expected
