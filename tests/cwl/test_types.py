"""Tests for the CWL type system."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cwl.errors import ValidationException
from repro.cwl.types import (
    build_directory_value,
    build_file_value,
    coerce_file_inputs,
    is_file_value,
    matches,
    normalize_type,
    value_to_path,
)


# ------------------------------------------------------------- normalisation


@pytest.mark.parametrize("spec,expected_kind", [
    ("string", "string"),
    ("int", "int"),
    ("boolean", "boolean"),
    ("File", "File"),
    ("Directory", "Directory"),
    ("Any", "Any"),
    ("stdout", "stdout"),
])
def test_primitive_types(spec, expected_kind):
    assert normalize_type(spec).kind == expected_kind


def test_optional_shorthand():
    ctype = normalize_type("string?")
    assert ctype.kind == "union"
    assert ctype.is_optional
    assert str(ctype) == "string?"


def test_array_shorthand():
    ctype = normalize_type("File[]")
    assert ctype.kind == "array"
    assert ctype.items.kind == "File"
    assert ctype.is_array


def test_structured_array():
    ctype = normalize_type({"type": "array", "items": "int"})
    assert ctype.kind == "array" and ctype.items.kind == "int"


def test_enum_type():
    ctype = normalize_type({"type": "enum", "symbols": ["a", "b/c"]})
    assert ctype.kind == "enum"
    assert ctype.symbols == ("a", "c")


def test_record_type():
    ctype = normalize_type({"type": "record", "fields": [
        {"name": "x", "type": "int"}, {"name": "y", "type": "string?"}]})
    assert ctype.kind == "record"
    assert set(ctype.fields) == {"x", "y"}


def test_union_list():
    ctype = normalize_type(["null", "string", "int"])
    assert ctype.kind == "union"
    assert ctype.is_optional


def test_union_single_member_collapses():
    assert normalize_type(["string"]).kind == "string"


def test_unknown_type_rejected():
    with pytest.raises(ValidationException):
        normalize_type("complex128")
    with pytest.raises(ValidationException):
        normalize_type({"type": "array"})  # missing items
    with pytest.raises(ValidationException):
        normalize_type(42)


def test_normalize_is_idempotent():
    ctype = normalize_type("string[]")
    assert normalize_type(ctype) is ctype


# ------------------------------------------------------------------ matching


@pytest.mark.parametrize("value,spec,expected", [
    ("hello", "string", True),
    (5, "int", True),
    (True, "int", False),            # bools are not ints in CWL
    (True, "boolean", True),
    (1.5, "double", True),
    (None, "string?", True),
    (None, "string", False),
    ([1, 2], "int[]", True),
    ([1, "x"], "int[]", False),
    ("a", {"type": "enum", "symbols": ["a", "b"]}, True),
    ("z", {"type": "enum", "symbols": ["a", "b"]}, False),
    ({"class": "File", "path": "/x"}, "File", True),
    ("/plain/path.txt", "File", True),
    (5, "Any", True),
    (None, "Any", False),
])
def test_matches(value, spec, expected):
    assert matches(value, spec) is expected


def test_matches_record():
    record_type = {"type": "record", "fields": [{"name": "a", "type": "int"},
                                                {"name": "b", "type": "string?"}]}
    assert matches({"a": 1}, record_type)
    assert not matches({"a": "nope"}, record_type)
    assert not matches("not a dict", record_type)


# --------------------------------------------------------------- file values


def test_build_file_value_populates_metadata(tmp_path):
    path = tmp_path / "data.tar.gz"
    path.write_bytes(b"x" * 10)
    value = build_file_value(str(path), compute_checksum=True)
    assert value["class"] == "File"
    assert value["basename"] == "data.tar.gz"
    assert value["nameroot"] == "data.tar"
    assert value["nameext"] == ".gz"
    assert value["size"] == 10
    assert value["checksum"].startswith("sha1$")
    assert is_file_value(value)


def test_build_file_value_load_contents(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("abc")
    assert build_file_value(str(path), load_contents=True)["contents"] == "abc"


def test_build_directory_value_with_listing(tmp_path):
    (tmp_path / "sub").mkdir()
    (tmp_path / "a.txt").write_text("1")
    value = build_directory_value(str(tmp_path), listing=True)
    assert value["class"] == "Directory"
    names = {entry["basename"] for entry in value["listing"]}
    assert names == {"sub", "a.txt"}


def test_coerce_file_inputs_expands_minimal_file(tmp_path):
    path = tmp_path / "x.csv"
    path.write_text("1")
    coerced = coerce_file_inputs({"class": "File", "path": str(path)})
    assert coerced["basename"] == "x.csv"
    assert coerced["size"] == 1


def test_coerce_file_inputs_recurses_into_lists():
    values = coerce_file_inputs([{"class": "File", "path": "/a"}, 5])
    assert values[0]["basename"] == "a"
    assert values[1] == 5


def test_value_to_path_variants(tmp_path):
    assert value_to_path({"class": "File", "path": "/x/y.txt"}) == "/x/y.txt"
    assert value_to_path({"class": "File", "location": "file:///z.txt"}) == "/z.txt"
    assert value_to_path("/direct/path") == "/direct/path"
    with pytest.raises(ValidationException):
        value_to_path(42)


# ------------------------------------------------------------------ property


_SIMPLE_TYPE_NAMES = st.sampled_from(["string", "int", "boolean", "File", "float", "null"])


@given(name=_SIMPLE_TYPE_NAMES)
def test_property_optional_always_accepts_none(name):
    ctype = normalize_type([name, "null"]) if name != "null" else normalize_type("null")
    assert matches(None, ctype)


@given(name=st.sampled_from(["string", "int", "boolean"]), depth=st.integers(0, 3))
def test_property_nested_arrays_round_trip_str(name, depth):
    spec: object = name
    for _ in range(depth):
        spec = {"type": "array", "items": spec}
    ctype = normalize_type(spec)
    rendered = str(ctype)
    assert rendered.count("[]") == depth
