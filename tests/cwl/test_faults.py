"""Unit tests for deterministic fault injection (repro.cwl.faults)."""

from __future__ import annotations

import os

import pytest

from repro.cwl.errors import InjectedFault, exit_class
from repro.cwl.faults import (
    FaultPlan,
    FaultSpec,
    fault_profiles,
    get_fault_profile,
)


# ------------------------------------------------------------------ matching

def test_fail_spec_raises_injected_fault_with_exit_code():
    plan = FaultPlan(specs=(FaultSpec(job="tool-*", exit_code=42),))
    with pytest.raises(InjectedFault) as excinfo:
        plan.apply("tool-a", 1)
    assert excinfo.value.exit_code == 42
    assert exit_class(excinfo.value) == "permanentFail"
    plan.apply("other", 1)  # pattern miss: no fault
    assert plan.injected == [("tool-a", 1, "fail")]


def test_attempt_window_bounds_injection():
    plan = FaultPlan(specs=(FaultSpec(job="*", attempts=2),))
    for attempt in (1, 2):
        with pytest.raises(InjectedFault):
            plan.apply("job", attempt)
    plan.apply("job", 3)  # past the window: succeeds
    assert plan.max_failed_attempts("job") == 2


def test_delay_spec_sleeps_without_failing():
    slept = []
    plan = FaultPlan(specs=(FaultSpec(job="*", action="delay", delay_s=0.25),),
                     _sleep=slept.append)
    plan.apply("job", 1)
    assert slept == [0.25]
    assert plan.injected == [("job", 1, "delay")]


def test_unknown_action_is_an_error():
    plan = FaultPlan(specs=(FaultSpec(job="*", action="explode"),))
    with pytest.raises(ValueError):
        plan.apply("job", 1)


# -------------------------------------------------------- seeded selection

def test_probability_selection_is_deterministic_per_seed():
    spec = FaultSpec(job="*", probability=0.5)
    jobs = [f"job-{i}" for i in range(64)]

    def selected(seed):
        plan = FaultPlan(specs=(spec,), seed=seed)
        return [job for job in jobs if plan.faults_for(job, 1)]

    first = selected(4242)
    assert selected(4242) == first          # same seed → same subset
    assert selected(7) != first             # different seed → different subset
    assert 0 < len(first) < len(jobs)       # an actual ~half, not all-or-none


def test_selection_fraction_range():
    plan = FaultPlan(seed=3)
    fractions = [plan.selection_fraction(f"j{i}") for i in range(32)]
    assert all(0.0 <= f < 1.0 for f in fractions)
    assert len(set(fractions)) == len(fractions)


# ------------------------------------------------- durable-state vandalism

def test_corrupt_file_flips_one_byte_in_place(tmp_path):
    path = tmp_path / "body"
    path.write_bytes(b"hello world")
    FaultPlan.corrupt_file(str(path), offset=4)
    data = path.read_bytes()
    assert len(data) == 11
    assert data != b"hello world"
    assert data[:4] == b"hell" and data[5:] == b" world"


def test_corrupt_file_refuses_empty_file(tmp_path):
    path = tmp_path / "empty"
    path.write_bytes(b"")
    with pytest.raises(ValueError):
        FaultPlan.corrupt_file(str(path))


def test_truncate_cas_body_empties_one_body(tmp_path):
    cas = tmp_path / "cas"
    cas.mkdir()
    (cas / "aaa").write_bytes(b"first")
    (cas / "bbb").write_bytes(b"second")
    digest = FaultPlan.truncate_cas_body(str(tmp_path))
    assert digest == "aaa"
    assert (cas / "aaa").read_bytes() == b""
    assert (cas / "bbb").read_bytes() == b"second"


def test_truncate_cas_body_requires_bodies(tmp_path):
    os.makedirs(tmp_path / "cas")
    with pytest.raises(ValueError):
        FaultPlan.truncate_cas_body(str(tmp_path))


# ----------------------------------------------------------------- profiles

def test_profiles_registry_contents():
    profiles = fault_profiles()
    assert set(profiles) >= {"transient-all", "flaky-half", "fatal-all"}
    for name, profile in profiles.items():
        assert profile.name == name
        plan = profile.make_plan()
        assert isinstance(plan, FaultPlan)
        assert profile.policy.max_attempts >= 1
    # Fresh plans each call: no shared injected-record state.
    p1 = profiles["transient-all"].make_plan()
    p2 = profiles["transient-all"].make_plan()
    assert p1 is not p2 and p1.injected == [] and p2.injected == []


def test_transient_profile_is_tolerated_by_its_policy():
    profile = get_fault_profile("transient-all")
    plan = profile.make_plan()
    assert plan.max_failed_attempts("anything") < profile.policy.max_attempts


def test_fatal_profile_exhausts_its_policy():
    profile = get_fault_profile("fatal-all")
    plan = profile.make_plan()
    assert plan.max_failed_attempts("anything") >= profile.policy.max_attempts


def test_unknown_profile_names_the_known_ones():
    with pytest.raises(KeyError, match="transient-all"):
        get_fault_profile("nope")
