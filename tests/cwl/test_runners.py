"""Tests for the cwltool-like reference runner and the Toil-like runner."""

from __future__ import annotations

import os

import pytest

from repro.cluster.nodes import NodeInventory
from repro.cluster.scheduler import SimulatedSlurmCluster
from repro.cwl.errors import JobFailure, ValidationException
from repro.cwl.loader import load_document, load_tool
from repro.cwl.runners.reference import ReferenceRunner
from repro.cwl.runners.toil.batch import SingleMachineBatchSystem, SlurmBatchSystem
from repro.cwl.runners.toil.jobstore import FileJobStore
from repro.cwl.runners.toil.runner import ToilStyleRunner
from repro.cwl.runtime import RuntimeContext
from repro.cwl.schema import ExpressionTool


# ----------------------------------------------------------------- reference runner


def test_reference_runner_single_tool(cwl_dir, tmp_path):
    runner = ReferenceRunner(runtime_context=RuntimeContext(basedir=str(tmp_path)))
    result = runner.run(load_tool(cwl_dir / "echo.cwl"), {"message": "ref"})
    assert result.status == "success"
    assert result.jobs_run == 1
    assert result.wall_time_s > 0
    with open(result.outputs["output"]["path"]) as handle:
        assert handle.read().strip() == "ref"


def test_reference_runner_validates_document(tmp_path):
    invalid = load_document({"cwlVersion": "v1.2", "class": "CommandLineTool",
                             "inputs": {}, "outputs": {}})
    runner = ReferenceRunner(runtime_context=RuntimeContext(basedir=str(tmp_path)))
    with pytest.raises(ValidationException):
        runner.run(invalid, {})
    relaxed = ReferenceRunner(runtime_context=RuntimeContext(basedir=str(tmp_path)), validate=False)
    with pytest.raises(Exception):
        relaxed.run(invalid, {})  # still fails at execution, but not at validation


def test_reference_runner_tool_failure_propagates(tmp_path):
    failing = load_document({"cwlVersion": "v1.2", "class": "CommandLineTool",
                             "baseCommand": "false", "inputs": {}, "outputs": {}})
    runner = ReferenceRunner(runtime_context=RuntimeContext(basedir=str(tmp_path)))
    with pytest.raises(JobFailure):
        runner.run(failing, {})


def test_reference_runner_expression_tool(tmp_path):
    tool = load_document({
        "cwlVersion": "v1.2", "class": "ExpressionTool",
        "requirements": [{"class": "InlineJavascriptRequirement"}],
        "inputs": {"x": "int"}, "outputs": {"doubled": "int", "label": "string"},
        "expression": "${ return {'doubled': inputs.x * 2, 'label': 'x' + inputs.x}; }",
    })
    assert isinstance(tool, ExpressionTool)
    runner = ReferenceRunner(runtime_context=RuntimeContext(basedir=str(tmp_path)))
    result = runner.run(tool, {"x": 4})
    assert result.outputs == {"doubled": 8, "label": "x4"}


def test_reference_runner_counts_scatter_jobs(cwl_dir, tmp_path, image_batch):
    runner = ReferenceRunner(runtime_context=RuntimeContext(basedir=str(tmp_path)),
                             parallel=True, max_workers=4)
    workflow = load_document(cwl_dir / "scatter_images.cwl")
    job_order = {
        "input_images": [{"class": "File", "path": p} for p in image_batch],
        "size": 16, "sepia": True, "radius": 1,
    }
    result = runner.run(workflow, job_order)
    outputs = result.outputs["final_outputs"]
    assert len(outputs) == len(image_batch)
    assert all(o["basename"] == "blurred.png" for o in outputs)
    # 3 pipeline stages per image.
    assert result.jobs_run == 3 * len(image_batch)
    # Each scatter job ran in its own working directory (no filename collisions).
    assert len({o["path"] for o in outputs}) == len(image_batch)


def test_reference_runner_js_engine_not_cached_by_default(cwl_dir, tmp_path):
    runner = ReferenceRunner(runtime_context=RuntimeContext(basedir=str(tmp_path)))
    assert runner.runtime_context.cache_js_engine is False


# ------------------------------------------------------------------------ job store


def test_job_store_job_lifecycle(tmp_path):
    store = FileJobStore(str(tmp_path / "store"))
    job = store.create_job("step-a", requirements={"coresMin": 2}, payload={"inputs": {"x": 1}})
    assert job.state == "new"
    store.update_job(job, state="issued")
    store.update_job(job, state="done")
    reloaded = store.load_job(job.job_id)
    assert reloaded.state == "done"
    assert reloaded.requirements == {"coresMin": 2}
    assert store.stats()["done"] == 1
    store.delete_job(job.job_id)
    assert store.list_jobs() == []


def test_job_store_file_import_export(tmp_path):
    store = FileJobStore(str(tmp_path / "store"))
    source = tmp_path / "data.txt"
    source.write_text("precious bytes")
    file_id = store.import_file(str(source))
    assert store.has_file(file_id)
    # Importing identical content is idempotent (content-addressed).
    assert store.import_file(str(source)) == file_id
    exported = store.export_file(file_id, str(tmp_path / "out" / "copy.txt"))
    assert open(exported).read() == "precious bytes"
    store.destroy()
    assert not os.path.exists(store.store_dir)


# -------------------------------------------------------------------- batch systems


def test_single_machine_batch_system_runs_payloads():
    batch = SingleMachineBatchSystem(max_cores=2)
    futures = [batch.issue(f"job{i}", lambda i=i: i * 3) for i in range(5)]
    assert [f.result() for f in futures] == [0, 3, 6, 9, 12]
    assert batch.jobs_issued == 5
    batch.shutdown()


def test_slurm_batch_system_runs_payloads_through_cluster():
    cluster = SimulatedSlurmCluster(NodeInventory.homogeneous(2, cores=2))
    batch = SlurmBatchSystem(cluster=cluster)
    try:
        futures = [batch.issue(f"job{i}", lambda i=i: i + 1) for i in range(4)]
        assert sorted(f.result() for f in futures) == [1, 2, 3, 4]
        assert batch.jobs_issued == 4
    finally:
        batch.shutdown()
        cluster.shutdown()


def test_slurm_batch_system_propagates_payload_failure():
    cluster = SimulatedSlurmCluster(NodeInventory.homogeneous(1, cores=2))
    batch = SlurmBatchSystem(cluster=cluster)

    def bad():
        raise RuntimeError("payload exploded")

    try:
        with pytest.raises(RuntimeError):
            batch.issue("bad", bad).result()
    finally:
        batch.shutdown()
        cluster.shutdown()


# ------------------------------------------------------------------- toil-like runner


def test_toil_runner_single_tool_records_jobs(cwl_dir, tmp_path):
    runner = ToilStyleRunner(job_store_dir=str(tmp_path / "jobstore"),
                             runtime_context=RuntimeContext(basedir=str(tmp_path)))
    result = runner.run(load_tool(cwl_dir / "echo.cwl"), {"message": "via toil"})
    assert result.status == "success"
    stats = runner.job_store.stats()
    assert stats.get("done") == 1
    assert stats["files"] >= 1  # the stdout file was imported into the store
    runner.close()


def test_toil_runner_failure_marks_job_failed(tmp_path):
    failing = load_document({"cwlVersion": "v1.2", "class": "CommandLineTool",
                             "baseCommand": "false", "inputs": {}, "outputs": {}})
    runner = ToilStyleRunner(job_store_dir=str(tmp_path / "jobstore"),
                             runtime_context=RuntimeContext(basedir=str(tmp_path)))
    with pytest.raises(JobFailure):
        runner.run(failing, {})
    assert runner.job_store.stats().get("failed") == 1
    runner.close()


def test_toil_runner_workflow_imports_outputs(cwl_dir, tmp_path, small_image):
    runner = ToilStyleRunner(job_store_dir=str(tmp_path / "jobstore"),
                             runtime_context=RuntimeContext(basedir=str(tmp_path)),
                             max_workers=4)
    workflow = load_document(cwl_dir / "image_pipeline.cwl")
    result = runner.run(workflow, {"input_image": {"class": "File", "path": small_image},
                                   "size": 16, "sepia": False, "radius": 1})
    final = result.outputs["final_output"]
    assert final["basename"] == "blurred.png"
    assert "jobStoreFileID" in final
    assert runner.job_store.has_file(final["jobStoreFileID"])
    assert result.jobs_run == 3
    runner.close(destroy_job_store=True)
    assert not os.path.exists(str(tmp_path / "jobstore"))


def test_toil_runner_with_slurm_batch_system(cwl_dir, tmp_path, small_image):
    cluster = SimulatedSlurmCluster(NodeInventory.homogeneous(3, cores=4))
    runner = ToilStyleRunner(
        job_store_dir=str(tmp_path / "jobstore"),
        batch_system=SlurmBatchSystem(cluster=cluster),
        runtime_context=RuntimeContext(basedir=str(tmp_path)),
    )
    try:
        workflow = load_document(cwl_dir / "image_pipeline.cwl")
        result = runner.run(workflow, {"input_image": {"class": "File", "path": small_image},
                                       "size": 16, "sepia": True, "radius": 1})
        assert result.outputs["final_output"]["basename"] == "blurred.png"
        # Every pipeline stage went through the simulated scheduler.
        assert len(cluster.job_states()) == 3
    finally:
        runner.close()
        cluster.shutdown()
