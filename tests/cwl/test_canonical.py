"""Output canonicalisation and stable error/exit classes."""

from __future__ import annotations

import pytest

from repro.cwl.canonical import canonical_outputs, canonical_value, expected_value
from repro.cwl.errors import (
    EXIT_CLASSES,
    CWLError,
    ExpressionError,
    InputValidationError,
    JavaScriptError,
    JobFailure,
    OutputCollectionError,
    UnsupportedRequirement,
    ValidationException,
    WorkflowException,
    error_class,
    exit_class,
    unwrap_failure,
)
from repro.cwl.types import build_file_value
from repro.parsl.errors import BashExitFailure, DependencyError, MissingOutputs
from repro.utils.hashing import hash_bytes


def test_canonical_file_drops_paths_and_adds_checksum(tmp_path):
    path = tmp_path / "payload.txt"
    path.write_text("payload body\n")
    canonical = canonical_value(build_file_value(str(path)))
    assert canonical == {
        "class": "File",
        "basename": "payload.txt",
        "size": 13,
        "checksum": hash_bytes(b"payload body\n"),
    }


def test_canonical_matches_expected_contents_form(tmp_path):
    path = tmp_path / "payload.txt"
    path.write_text("payload body\n")
    actual = canonical_value(build_file_value(str(path)))
    expected = expected_value({"class": "File", "basename": "payload.txt",
                               "contents": "payload body\n"})
    assert actual == expected


def test_canonical_recurses_lists_dicts_and_secondary_files(tmp_path):
    path = tmp_path / "main.txt"
    path.write_text("main\n")
    sidecar = tmp_path / "main.idx"
    sidecar.write_text("idx\n")
    file_value = build_file_value(str(path))
    file_value["secondaryFiles"] = [build_file_value(str(sidecar))]
    canonical = canonical_outputs({"out": [file_value], "n": 3})
    assert canonical["n"] == 3
    assert canonical["out"][0]["secondaryFiles"][0]["basename"] == "main.idx"


def test_canonical_missing_file_keeps_declared_fields():
    value = {"class": "File", "path": "/nope/gone.txt", "basename": "gone.txt"}
    canonical = canonical_value(value)
    assert canonical["basename"] == "gone.txt"
    assert canonical["size"] is None and canonical["checksum"] is None


def test_canonical_directory_sorts_listing(tmp_path):
    (tmp_path / "b.txt").write_text("b")
    (tmp_path / "a.txt").write_text("a")
    canonical = canonical_value({"class": "Directory", "path": str(tmp_path),
                                 "basename": tmp_path.name})
    assert [entry["basename"] for entry in canonical["listing"]] == ["a.txt", "b.txt"]


@pytest.mark.parametrize("exc,expected", [
    (None, "success"),
    (JobFailure("t", 3), "permanentFail"),
    (BashExitFailure("app", 3), "permanentFail"),
    (UnsupportedRequirement("no"), "unsupported"),
    (ExpressionError("bad"), "expressionError"),
    (JavaScriptError("bad"), "expressionError"),
    (OutputCollectionError("none"), "outputError"),
    (MissingOutputs("app", ["a.txt"]), "outputError"),
    (ValidationException("doc"), "invalid"),
    (InputValidationError("order"), "invalid"),
    (WorkflowException("runtime"), "workflowError"),
    (CWLError("generic"), "error"),
    (RuntimeError("anything"), "error"),
])
def test_exit_class_normalisation(exc, expected):
    assert exit_class(exc) == expected
    assert expected in EXIT_CLASSES


def test_dependency_errors_unwrap_to_the_root_failure():
    root = JobFailure("tool", 9)
    wrapped = DependencyError([DependencyError([root], 2)], 1)
    assert unwrap_failure(wrapped) is root
    assert exit_class(wrapped) == "permanentFail"
    assert error_class(wrapped) == "JobFailure"


def test_error_class_is_the_specific_type_name():
    assert error_class(InputValidationError("x")) == "InputValidationError"
    assert error_class(ValueError("x")) == "ValueError"
