"""Tests for document validation."""

from __future__ import annotations

import pytest

from repro.cwl.errors import ValidationException
from repro.cwl.loader import load_document
from repro.cwl.validate import ensure_valid, validate_process


def test_example_documents_are_valid(cwl_dir):
    for name in ("echo.cwl", "resize_image.cwl", "filter_image.cwl", "blur_image.cwl",
                 "image_pipeline.cwl", "scatter_images.cwl", "capitalize_python.cwl",
                 "capitalize_js.cwl", "validate_csv.cwl", "wordcount.cwl"):
        process = load_document(cwl_dir / name)
        assert validate_process(process) == [], f"{name} should validate cleanly"


def test_tool_without_command_is_invalid():
    tool = load_document({"cwlVersion": "v1.2", "class": "CommandLineTool",
                          "inputs": {}, "outputs": {}})
    problems = validate_process(tool)
    assert any("baseCommand" in p for p in problems)


def test_duplicate_input_ids_detected():
    tool = load_document({"cwlVersion": "v1.2", "class": "CommandLineTool", "baseCommand": "x",
                          "inputs": [{"id": "a", "type": "string"}, {"id": "a", "type": "int"}],
                          "outputs": {}})
    assert any("duplicate input" in p for p in validate_process(tool))


def test_output_without_binding_detected():
    tool = load_document({"cwlVersion": "v1.2", "class": "CommandLineTool", "baseCommand": "x",
                          "inputs": {}, "outputs": {"result": "File"}})
    assert any("outputBinding" in p for p in validate_process(tool))


def test_workflow_unknown_source_detected():
    workflow = load_document({
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"a": "string"}, "outputs": {},
        "steps": {"s": {"run": {"class": "CommandLineTool", "baseCommand": "x",
                                "inputs": {"v": "string"}, "outputs": {}},
                        "in": {"v": "does_not_exist"}, "out": []}},
    })
    assert any("unknown workflow input" in p for p in validate_process(workflow))


def test_workflow_unknown_step_output_source_detected():
    workflow = load_document({
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"a": "string"},
        "outputs": {"final": {"type": "File", "outputSource": "s/not_an_output"}},
        "steps": {"s": {"run": {"class": "CommandLineTool", "baseCommand": "x",
                                "inputs": {"v": "string"}, "outputs": {"o": "stdout"},
                                "stdout": "o.txt"},
                        "in": {"v": "a"}, "out": ["o"]}},
    })
    assert any("unknown step output" in p for p in validate_process(workflow))


def test_workflow_step_passes_undeclared_input_detected():
    workflow = load_document({
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"a": "string"}, "outputs": {},
        "steps": {"s": {"run": {"class": "CommandLineTool", "baseCommand": "x",
                                "inputs": {"v": "string"}, "outputs": {}},
                        "in": {"v": "a", "extra": "a"}, "out": []}},
    })
    assert any("does not declare" in p for p in validate_process(workflow))


def test_workflow_scatter_over_undeclared_input_detected():
    workflow = load_document({
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"xs": "string[]"}, "outputs": {},
        "steps": {"s": {"run": {"class": "CommandLineTool", "baseCommand": "x",
                                "inputs": {"v": "string"}, "outputs": {}},
                        "scatter": "other", "in": {"v": "xs"}, "out": []}},
    })
    assert any("scatters over" in p for p in validate_process(workflow))


def test_workflow_cycle_detected():
    workflow = load_document({
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {}, "outputs": {},
        "steps": {
            "a": {"run": {"class": "CommandLineTool", "baseCommand": "x",
                          "inputs": {"v": "File"}, "outputs": {"o": "stdout"}, "stdout": "a.txt"},
                  "in": {"v": "b/o"}, "out": ["o"]},
            "b": {"run": {"class": "CommandLineTool", "baseCommand": "x",
                          "inputs": {"v": "File"}, "outputs": {"o": "stdout"}, "stdout": "b.txt"},
                  "in": {"v": "a/o"}, "out": ["o"]},
        },
    })
    assert any("cycle" in p for p in validate_process(workflow))


def test_empty_workflow_flagged():
    workflow = load_document({"cwlVersion": "v1.2", "class": "Workflow",
                              "inputs": {}, "outputs": {}, "steps": {}})
    assert any("no steps" in p for p in validate_process(workflow))


def test_strict_mode_flags_unknown_requirements():
    tool = load_document({"cwlVersion": "v1.2", "class": "CommandLineTool", "baseCommand": "x",
                          "requirements": [{"class": "QuantumComputingRequirement"}],
                          "inputs": {}, "outputs": {}})
    assert validate_process(tool, strict=False) == []
    assert any("unsupported requirement" in p for p in validate_process(tool, strict=True))


def test_ensure_valid_raises_with_all_issues():
    tool = load_document({"cwlVersion": "v1.2", "class": "CommandLineTool",
                          "inputs": [{"id": "a", "type": "string"}, {"id": "a", "type": "int"}],
                          "outputs": {}})
    with pytest.raises(ValidationException) as err:
        ensure_valid(tool)
    assert len(err.value.issues) >= 2
