"""Tests for scatter expansion and output re-nesting."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cwl.errors import ValidationException
from repro.cwl.scatter import build_scatter_jobs, nest_outputs


def test_dotproduct_single_key():
    plan = build_scatter_jobs({"image": ["a", "b", "c"], "size": 10}, ["image"], "dotproduct")
    assert plan.jobs == [
        {"image": "a", "size": 10},
        {"image": "b", "size": 10},
        {"image": "c", "size": 10},
    ]
    assert plan.shape == [3]


def test_dotproduct_multiple_keys():
    plan = build_scatter_jobs({"x": [1, 2], "y": ["a", "b"], "k": 0}, ["x", "y"], "dotproduct")
    assert plan.jobs == [{"x": 1, "y": "a", "k": 0}, {"x": 2, "y": "b", "k": 0}]


def test_dotproduct_unequal_lengths_rejected():
    with pytest.raises(ValidationException):
        build_scatter_jobs({"x": [1, 2], "y": [1]}, ["x", "y"], "dotproduct")


def test_flat_crossproduct():
    plan = build_scatter_jobs({"x": [1, 2], "y": ["a", "b", "c"]}, ["x", "y"], "flat_crossproduct")
    assert len(plan.jobs) == 6
    assert plan.jobs[0] == {"x": 1, "y": "a"}
    assert plan.jobs[-1] == {"x": 2, "y": "c"}
    assert plan.shape == [2, 3]


def test_nested_crossproduct_shape_and_nesting():
    plan = build_scatter_jobs({"x": [1, 2], "y": ["a", "b", "c"]}, ["x", "y"], "nested_crossproduct")
    flat_results = [f"{job['x']}{job['y']}" for job in plan.jobs]
    nested = nest_outputs(flat_results, plan.shape)
    assert nested == [["1a", "1b", "1c"], ["2a", "2b", "2c"]]


def test_empty_scatter_source_produces_no_jobs():
    plan = build_scatter_jobs({"x": [], "other": 1}, ["x"], "dotproduct")
    assert plan.is_empty
    assert plan.jobs == []


def test_scatter_over_non_array_rejected():
    with pytest.raises(ValidationException):
        build_scatter_jobs({"x": 5}, ["x"], "dotproduct")


def test_unknown_method_rejected():
    with pytest.raises(ValidationException):
        build_scatter_jobs({"x": [1]}, ["x"], "zipproduct")


def test_no_scatter_keys_rejected():
    with pytest.raises(ValidationException):
        build_scatter_jobs({"x": [1]}, [], "dotproduct")


def test_nest_outputs_identity_for_single_dimension():
    assert nest_outputs([1, 2, 3], [3]) == [1, 2, 3]
    assert nest_outputs([], []) == []


def test_nest_outputs_three_dimensions():
    shape = [2, 2, 2]
    flat = list(range(8))
    nested = nest_outputs(flat, shape)
    assert nested == [[[0, 1], [2, 3]], [[4, 5], [6, 7]]]


@given(xs=st.lists(st.integers(), max_size=8), ys=st.lists(st.integers(), max_size=8))
def test_property_flat_crossproduct_size(xs, ys):
    plan = build_scatter_jobs({"x": xs, "y": ys}, ["x", "y"], "flat_crossproduct")
    assert len(plan.jobs) == len(xs) * len(ys)


@given(xs=st.lists(st.integers(), min_size=1, max_size=6),
       ys=st.lists(st.integers(), min_size=1, max_size=6))
def test_property_nested_crossproduct_round_trip(xs, ys):
    """Property: flattening the nested structure recovers the flat job order."""
    plan = build_scatter_jobs({"x": xs, "y": ys}, ["x", "y"], "nested_crossproduct")
    flat = [(job["x"], job["y"]) for job in plan.jobs]
    nested = nest_outputs(flat, plan.shape)
    reflattened = [item for row in nested for item in row]
    assert reflattened == flat


@given(xs=st.lists(st.integers(), min_size=1, max_size=10))
def test_property_dotproduct_preserves_element_order(xs):
    plan = build_scatter_jobs({"x": xs}, ["x"], "dotproduct")
    assert [job["x"] for job in plan.jobs] == xs
