"""Tests for the runner-agnostic workflow engine (dataflow, scatter, when, subworkflows)."""

from __future__ import annotations

import threading

import pytest

from repro.cwl.errors import WorkflowException
from repro.cwl.loader import load_document
from repro.cwl.runtime import RuntimeContext
from repro.cwl.schema import CommandLineTool, Process
from repro.cwl.workflow import WorkflowEngine


def make_workflow(doc):
    return load_document(doc)


def counting_runner(results_by_tool=None):
    """A fake process runner that records invocations and returns canned outputs."""
    calls = []

    def runner(process: Process, job_order, runtime_context):
        calls.append((process.id or getattr(process, "base_command", None), dict(job_order)))
        if results_by_tool is not None:
            return results_by_tool(process, job_order)
        # Default: echo back inputs under output names "out".
        return {"out": job_order}

    runner.calls = calls  # type: ignore[attr-defined]
    return runner


SIMPLE_TOOL = {
    "class": "CommandLineTool", "baseCommand": "x",
    "inputs": {"value": "Any"}, "outputs": {"out": {"type": "Any",
                                                    "outputBinding": {"outputEval": "$(1)"}}},
}


def linear_workflow():
    return make_workflow({
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"start": "int"},
        "outputs": {"final": {"type": "Any", "outputSource": "second/out"}},
        "steps": {
            "first": {"run": dict(SIMPLE_TOOL), "in": {"value": "start"}, "out": ["out"]},
            "second": {"run": dict(SIMPLE_TOOL), "in": {"value": "first/out"}, "out": ["out"]},
        },
    })


def test_linear_workflow_passes_values_between_steps():
    def runner(process, job_order):
        return {"out": job_order["value"] * 2 if isinstance(job_order["value"], int)
                else job_order["value"]}

    engine = WorkflowEngine(linear_workflow(), counting_runner(runner))
    outputs = engine.run({"start": 3})
    assert outputs == {"final": 12}
    assert engine.records["first"].outputs["out"] == 6


def test_workflow_requires_its_inputs():
    engine = WorkflowEngine(linear_workflow(), counting_runner())
    with pytest.raises(Exception):
        engine.run({})


def test_step_default_and_value_from():
    workflow = make_workflow({
        "cwlVersion": "v1.2", "class": "Workflow",
        "requirements": [{"class": "StepInputExpressionRequirement"}],
        "inputs": {"name": "string"},
        "outputs": {"result": {"type": "Any", "outputSource": "only/out"}},
        "steps": {
            "only": {
                "run": {"class": "CommandLineTool", "baseCommand": "x",
                        "inputs": {"name": "string", "suffix": "string", "label": "string"},
                        "outputs": {"out": {"type": "Any", "outputBinding": {"outputEval": "$(1)"}}}},
                "in": {
                    "name": "name",
                    "suffix": {"default": ".png"},
                    "label": {"source": "name", "valueFrom": "$(self.toUpperCase())"},
                },
                "out": ["out"],
            }
        },
    })

    def runner(process, job_order):
        return {"out": f"{job_order['label']}{job_order['suffix']}"}

    outputs = WorkflowEngine(workflow, counting_runner(runner)).run({"name": "photo"})
    assert outputs == {"result": "PHOTO.png"}


def test_when_false_skips_step_and_yields_null():
    workflow = make_workflow({
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"go": "boolean", "x": "int"},
        "outputs": {"result": {"type": "Any", "outputSource": "maybe/out"}},
        "steps": {
            "maybe": {"run": dict(SIMPLE_TOOL), "when": "$(inputs.go)",
                      "in": {"go": "go", "value": "x"}, "out": ["out"]},
        },
    })
    runner = counting_runner(lambda p, j: {"out": "ran"})
    skipped = WorkflowEngine(workflow, runner).run({"go": False, "x": 1})
    assert skipped == {"result": None}
    assert len(runner.calls) == 0
    ran = WorkflowEngine(workflow, counting_runner(lambda p, j: {"out": "ran"})).run({"go": True, "x": 1})
    assert ran == {"result": "ran"}


def test_scatter_dotproduct_collects_arrays():
    workflow = make_workflow({
        "cwlVersion": "v1.2", "class": "Workflow",
        "requirements": [{"class": "ScatterFeatureRequirement"}],
        "inputs": {"values": "int[]"},
        "outputs": {"all": {"type": "Any[]", "outputSource": "per_value/out"}},
        "steps": {
            "per_value": {"run": dict(SIMPLE_TOOL), "scatter": "value",
                          "in": {"value": "values"}, "out": ["out"]},
        },
    })
    runner = counting_runner(lambda p, j: {"out": j["value"] + 100})
    outputs = WorkflowEngine(workflow, runner).run({"values": [1, 2, 3]})
    assert outputs == {"all": [101, 102, 103]}
    assert len(runner.calls) == 3


def test_scatter_parallel_execution_overlaps():
    workflow = make_workflow({
        "cwlVersion": "v1.2", "class": "Workflow",
        "requirements": [{"class": "ScatterFeatureRequirement"}],
        "inputs": {"values": "int[]"},
        "outputs": {"all": {"type": "Any[]", "outputSource": "per_value/out"}},
        "steps": {
            "per_value": {"run": dict(SIMPLE_TOOL), "scatter": "value",
                          "in": {"value": "values"}, "out": ["out"]},
        },
    })
    active = {"now": 0, "peak": 0}
    lock = threading.Lock()

    def runner(process, job_order, runtime_context):
        import time

        with lock:
            active["now"] += 1
            active["peak"] = max(active["peak"], active["now"])
        time.sleep(0.05)
        with lock:
            active["now"] -= 1
        return {"out": job_order["value"]}

    engine = WorkflowEngine(workflow.steps and workflow, runner, parallel=True, max_workers=4)
    engine.run({"values": list(range(4))})
    assert active["peak"] >= 2, "parallel scatter jobs should overlap"


def test_multiple_sources_merge_nested_and_flattened():
    base = {
        "cwlVersion": "v1.2", "class": "Workflow",
        "requirements": [{"class": "MultipleInputFeatureRequirement"}],
        "inputs": {"a": "int[]", "b": "int[]"},
        "outputs": {"combined": {"type": "Any", "outputSource": "merge/out"}},
        "steps": {
            "merge": {"run": dict(SIMPLE_TOOL),
                      "in": {"value": {"source": ["a", "b"]}}, "out": ["out"]},
        },
    }
    runner = counting_runner(lambda p, j: {"out": j["value"]})
    nested = WorkflowEngine(make_workflow(base), runner).run({"a": [1], "b": [2]})
    assert nested == {"combined": [[1], [2]]}

    flattened_doc = dict(base)
    flattened_doc["steps"] = {
        "merge": {"run": dict(SIMPLE_TOOL),
                  "in": {"value": {"source": ["a", "b"], "linkMerge": "merge_flattened"}},
                  "out": ["out"]},
    }
    flat = WorkflowEngine(make_workflow(flattened_doc), counting_runner(lambda p, j: {"out": j["value"]})).run(
        {"a": [1], "b": [2]})
    assert flat == {"combined": [1, 2]}


def test_missing_step_output_raises():
    engine = WorkflowEngine(linear_workflow(), counting_runner(lambda p, j: {"wrong_name": 1}))
    with pytest.raises(WorkflowException):
        engine.run({"start": 1})


def test_diamond_dependency_executes_each_step_once():
    workflow = make_workflow({
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"seed": "int"},
        "outputs": {"final": {"type": "Any", "outputSource": "join/out"}},
        "steps": {
            "left": {"run": dict(SIMPLE_TOOL), "in": {"value": "seed"}, "out": ["out"]},
            "right": {"run": dict(SIMPLE_TOOL), "in": {"value": "seed"}, "out": ["out"]},
            "join": {"run": {"class": "CommandLineTool", "baseCommand": "x",
                             "inputs": {"value": "Any", "other": "Any"},
                             "outputs": {"out": {"type": "Any",
                                                 "outputBinding": {"outputEval": "$(1)"}}}},
                     "in": {"value": "left/out", "other": "right/out"}, "out": ["out"]},
        },
    })
    runner = counting_runner(lambda p, j: {"out": sum(v for v in j.values() if isinstance(v, int))})
    outputs = WorkflowEngine(workflow, runner, parallel=True).run({"seed": 5})
    assert outputs == {"final": 10}
    assert len(runner.calls) == 3


def test_when_guard_skips_scattered_step():
    """`when` + `scatter`: a false guard skips the whole scatter (null outputs)."""
    doc = {
        "cwlVersion": "v1.2", "class": "Workflow",
        "requirements": [{"class": "ScatterFeatureRequirement"}],
        "inputs": {"go": "boolean", "values": "int[]"},
        "outputs": {"all": {"type": "Any", "outputSource": "per_value/out"}},
        "steps": {
            "per_value": {"run": dict(SIMPLE_TOOL), "scatter": "value",
                          "when": "$(inputs.go)",
                          "in": {"go": "go", "value": "values"}, "out": ["out"]},
        },
    }
    runner = counting_runner(lambda p, j: {"out": j["value"] * 10})
    skipped = WorkflowEngine(make_workflow(doc), runner).run({"go": False, "values": [1, 2]})
    assert skipped == {"all": None}
    assert len(runner.calls) == 0

    runner = counting_runner(lambda p, j: {"out": j["value"] * 10})
    ran = WorkflowEngine(make_workflow(doc), runner, parallel=True).run(
        {"go": True, "values": [1, 2, 3]})
    assert ran == {"all": [10, 20, 30]}
    assert len(runner.calls) == 3


def test_merge_flattened_workflow_outputs_across_scatters():
    """Workflow outputs with linkMerge: merge_flattened combine scatter arrays."""
    doc = {
        "cwlVersion": "v1.2", "class": "Workflow",
        "requirements": [{"class": "ScatterFeatureRequirement"},
                         {"class": "MultipleInputFeatureRequirement"}],
        "inputs": {"a": "int[]", "b": "int[]"},
        "outputs": {
            "flat": {"type": "Any", "outputSource": ["left/out", "right/out"],
                     "linkMerge": "merge_flattened"},
            "nested": {"type": "Any", "outputSource": ["left/out", "right/out"]},
        },
        "steps": {
            "left": {"run": dict(SIMPLE_TOOL), "scatter": "value",
                     "in": {"value": "a"}, "out": ["out"]},
            "right": {"run": dict(SIMPLE_TOOL), "scatter": "value",
                      "in": {"value": "b"}, "out": ["out"]},
        },
    }
    runner = counting_runner(lambda p, j: {"out": j["value"]})
    outputs = WorkflowEngine(make_workflow(doc), runner, parallel=True).run(
        {"a": [1, 2], "b": [3]})
    assert outputs["flat"] == [1, 2, 3]
    assert outputs["nested"] == [[1, 2], [3]]


def nested_scatter_workflow():
    """A fig1-style workload: scatter over a two-step subworkflow, plus a side scatter."""
    child = {
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"value": "Any"},
        "outputs": {"result": {"type": "Any", "outputSource": "second/out"}},
        "steps": {
            "first": {"run": dict(SIMPLE_TOOL), "in": {"value": "value"}, "out": ["out"]},
            "second": {"run": dict(SIMPLE_TOOL), "in": {"value": "first/out"}, "out": ["out"]},
        },
    }
    return make_workflow({
        "cwlVersion": "v1.2", "class": "Workflow",
        "requirements": [{"class": "ScatterFeatureRequirement"},
                         {"class": "SubworkflowFeatureRequirement"}],
        "inputs": {"values": "int[]"},
        "outputs": {"all": {"type": "Any", "outputSource": "pipe/result"},
                    "side": {"type": "Any", "outputSource": "extra/out"}},
        "steps": {
            "pipe": {"run": child, "scatter": "value",
                     "in": {"value": "values"}, "out": ["result"]},
            "extra": {"run": dict(SIMPLE_TOOL), "scatter": "value",
                      "in": {"value": "values"}, "out": ["out"]},
        },
    })


def test_scatter_over_subworkflow_expands_per_shard_subgraphs():
    def runner(process, job_order):
        return {"out": job_order["value"] + 1}

    engine = WorkflowEngine(nested_scatter_workflow(), counting_runner(runner))
    outputs = engine.run({"values": [10, 20]})
    # Each shard runs first(+1) then second(+1): 10 -> 12, 20 -> 22.
    assert outputs["all"] == [12, 22]
    assert outputs["side"] == [11, 21]
    assert engine.records["pipe"].scattered and engine.records["pipe"].job_count == 2
    # Inner steps are first-class records, namespaced per shard.
    assert engine.records["pipe[0]/first"].outputs["out"] == 11
    assert engine.records["pipe[1]/second"].outputs["out"] == 22


def test_parallel_worker_threads_never_exceed_max_workers():
    """Acceptance: one shared bounded pool — scatter inside parallel steps and
    subworkflows never multiplies threads beyond max_workers."""
    import time

    max_workers = 3
    active = {"now": 0, "peak": 0, "dag_threads_peak": 0}
    lock = threading.Lock()

    def runner(process, job_order, runtime_context):
        with lock:
            active["now"] += 1
            active["peak"] = max(active["peak"], active["now"])
            dag_threads = sum(1 for t in threading.enumerate()
                              if t.name.startswith(("cwl-dag", "cwl-workflow", "cwl-scatter")))
            active["dag_threads_peak"] = max(active["dag_threads_peak"], dag_threads)
        time.sleep(0.02)
        with lock:
            active["now"] -= 1
        return {"out": job_order["value"]}

    engine = WorkflowEngine(nested_scatter_workflow(), runner,
                            parallel=True, max_workers=max_workers)
    engine.run({"values": list(range(8))})
    # 8 subworkflow shards (2 steps each) + 8 side shards = 24 jobs total.
    assert active["peak"] <= max_workers, "live workers exceeded the global cap"
    assert active["dag_threads_peak"] <= max_workers, "scheduler spawned nested pools"
    assert active["peak"] >= 2, "parallel execution should overlap"


def test_scatter_shards_share_the_pool_with_other_steps():
    """Shards of one scatter and an independent step interleave (no barrier
    monopolising the pool)."""
    import time

    seen = []
    lock = threading.Lock()

    def runner(process, job_order, runtime_context):
        with lock:
            seen.append(job_order.get("value"))
        time.sleep(0.02)
        return {"out": job_order.get("value")}

    doc = {
        "cwlVersion": "v1.2", "class": "Workflow",
        "requirements": [{"class": "ScatterFeatureRequirement"}],
        "inputs": {"values": "int[]", "solo": "int"},
        "outputs": {"all": {"type": "Any", "outputSource": "fan/out"},
                    "one": {"type": "Any", "outputSource": "single/out"}},
        "steps": {
            "fan": {"run": dict(SIMPLE_TOOL), "scatter": "value",
                    "in": {"value": "values"}, "out": ["out"]},
            "single": {"run": dict(SIMPLE_TOOL), "in": {"value": "solo"}, "out": ["out"]},
        },
    }
    outputs = WorkflowEngine(make_workflow(doc), runner, parallel=True,
                             max_workers=4).run({"values": [1, 2, 3, 4, 5, 6], "solo": 99})
    assert outputs["all"] == [1, 2, 3, 4, 5, 6]
    assert outputs["one"] == 99
    # The independent step must not be queued behind the entire scatter.
    assert seen.index(99) < len(seen) - 1


def test_when_false_skips_sourceless_steps_inside_subworkflow():
    """A false `when` on a subworkflow step must skip even child steps with no
    sources (they get an explicit edge to the ingress node — regression test)."""
    child = {
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"value": "Any"},
        "outputs": {"result": {"type": "Any", "outputSource": "orphan/out"}},
        "steps": {
            # No sources at all: ready at t=0 unless wired to the ingress.
            "orphan": {"run": dict(SIMPLE_TOOL),
                       "in": {"value": {"default": 41}}, "out": ["out"]},
        },
    }
    parent = make_workflow({
        "cwlVersion": "v1.2", "class": "Workflow",
        "requirements": [{"class": "SubworkflowFeatureRequirement"}],
        "inputs": {"go": "boolean", "seed": "int"},
        "outputs": {"final": {"type": "Any", "outputSource": "sub/result"}},
        "steps": {
            "sub": {"run": child, "when": "$(inputs.go)",
                    "in": {"go": "go", "value": "seed"}, "out": ["result"]},
        },
    })
    runner = counting_runner(lambda p, j: {"out": j["value"] + 1})
    outputs = WorkflowEngine(parent, runner).run({"go": False, "seed": 1})
    assert outputs == {"final": None}
    assert len(runner.calls) == 0, "skipped subworkflow interior must not execute"

    runner = counting_runner(lambda p, j: {"out": j["value"] + 1})
    outputs = WorkflowEngine(parent, runner, parallel=True).run({"go": True, "seed": 1})
    assert outputs == {"final": 42}
    assert len(runner.calls) == 1


def test_engine_exposes_graph_and_detects_cycles():
    from repro.cwl.errors import ValidationException

    engine = WorkflowEngine(linear_workflow(), counting_runner())
    description = engine.graph.describe()
    assert description["critical_path"] == ["first", "second"]

    cyclic = make_workflow({
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"seed": "int"},
        "outputs": {},
        "steps": {
            "a": {"run": dict(SIMPLE_TOOL), "in": {"value": "b/out"}, "out": ["out"]},
            "b": {"run": dict(SIMPLE_TOOL), "in": {"value": "a/out"}, "out": ["out"]},
        },
    })
    with pytest.raises(ValidationException, match="cycle"):
        WorkflowEngine(cyclic, counting_runner()).run({"seed": 1})


def test_image_pipeline_workflow_with_real_tools(cwl_dir, tmp_path, small_image):
    """End-to-end: the paper's Listing 3 workflow through the workflow engine + real jobs."""
    from repro.cwl.runners.reference import ReferenceRunner

    workflow = load_document(cwl_dir / "image_pipeline.cwl")
    runner = ReferenceRunner(runtime_context=RuntimeContext(basedir=str(tmp_path)))
    result = runner.run(workflow, {
        "input_image": {"class": "File", "path": small_image},
        "size": 24, "sepia": True, "radius": 1,
    })
    final = result.outputs["final_output"]
    assert final["basename"] == "blurred.png"
    from repro.imaging.png import read_png

    assert read_png(final["path"]).shape == (24, 24, 3)
