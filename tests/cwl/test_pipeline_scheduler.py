"""The asyncio pipelined scheduler core (repro.cwl.scheduler.PipelineScheduler).

The contract under test: the pipelined core is *observably identical* to the
thread-pool core — same completion states, same ``on_error`` semantics, same
deterministic dispatch order under equal priorities — while enforcing its
additional invariants: the in-flight window never exceeds ``max_inflight``,
worker threads never exceed ``max_workers + max_inflight``, tiny nodes run
inline in batches without touching a pool, and an interrupt unwinds without
hanging the dispatcher.
"""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import pytest

from repro.cwl.errors import WorkflowException
from repro.cwl.graph import GraphNode, WorkflowGraph, find_step_cycle
from repro.cwl.scheduler import (
    NODE_DONE,
    NODE_FAILED,
    NODE_SKIPPED,
    Expansion,
    GraphScheduler,
    PipelineScheduler,
)

RUN_TIMEOUT_S = 30  # generous; guards against dispatcher hangs


def make_graph(edges, extra_nodes=()):
    """A WorkflowGraph from ``pred -> succ`` pairs of synthetic step nodes."""
    graph = WorkflowGraph()
    node_ids = list(dict.fromkeys(
        [n for edge in edges for n in edge] + list(extra_nodes)))
    for node_id in node_ids:
        graph.nodes[node_id] = GraphNode(id=node_id, kind="step",
                                         step=None, workflow=None)
        graph.predecessors[node_id] = []
    for pred, succ in edges:
        graph.predecessors[succ].append(pred)
    graph._finalise()
    return graph


def run_guarded(scheduler):
    """Run the scheduler on a watchdog thread so a hang fails, not blocks."""
    outcome = {}

    def target():
        try:
            scheduler.run()
            outcome["ok"] = True
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            outcome["exc"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(RUN_TIMEOUT_S)
    assert not thread.is_alive(), "scheduler run() hung"
    if "exc" in outcome:
        raise outcome["exc"]


class RecordingExecutor:
    """Three-stage executor that records calls, order and concurrency."""

    def __init__(self, *, tiny=False, exec_sleep_s=0.0, fail=(),
                 expansions=None, interrupt=()):
        self.tiny_flag = tiny
        self.exec_sleep_s = exec_sleep_s
        self.fail = set(fail)
        self.interrupt = set(interrupt)
        self.expansions = expansions or {}
        self.order = []
        self.threads = []
        self.lock = threading.Lock()
        self.live = 0
        self.peak = 0
        self.pipe_threads_peak = 0
        self.exec_threads_peak = 0

    def is_tiny(self, node):
        return self.tiny_flag

    def stage(self, node):
        return f"staged-{node.id}"

    def execute(self, node, staged):
        assert staged == f"staged-{node.id}"
        with self.lock:
            self.order.append(node.id)
            self.threads.append(threading.current_thread().name)
            self.live += 1
            self.peak = max(self.peak, self.live)
            names = [t.name for t in threading.enumerate()]
            self.pipe_threads_peak = max(
                self.pipe_threads_peak,
                sum(1 for n in names if n.startswith("cwl-pipe")))
            self.exec_threads_peak = max(
                self.exec_threads_peak,
                sum(1 for n in names if n.startswith("cwl-exec")))
        if self.exec_sleep_s:
            time.sleep(self.exec_sleep_s)
        with self.lock:
            self.live -= 1
        if node.id in self.interrupt:
            raise KeyboardInterrupt()
        if node.id in self.fail:
            raise WorkflowException(f"node {node.id} failed")
        return f"ran-{node.id}"

    def collect(self, node, staged, result):
        if node.id in self.expansions:
            return self.expansions[node.id]
        assert result == f"ran-{node.id}"
        return None


def diamond_edges():
    return [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]


# ------------------------------------------------------------------- parity

@pytest.mark.parametrize("tiny", [False, True])
def test_pipeline_completes_all_nodes_like_threadpool(tiny):
    reference = GraphScheduler(make_graph(diamond_edges()), lambda node: None,
                               parallel=True, max_workers=4)
    run_guarded(reference)

    executor = RecordingExecutor(tiny=tiny)
    scheduler = PipelineScheduler(make_graph(diamond_edges()),
                                  executor=executor, max_inflight=4,
                                  max_workers=4)
    run_guarded(scheduler)
    assert scheduler.states == reference.states
    assert all(state == NODE_DONE for state in scheduler.states.values())
    assert sorted(executor.order) == ["a", "b", "c", "d"]
    counted = scheduler.stage_timings["tiny_nodes" if tiny else "nodes"]
    assert counted == 4


@pytest.mark.parametrize("tiny", [False, True])
def test_equal_priority_dispatch_order_matches_threadpool_core(tiny):
    """Satellite: the heap's insertion-order tie-break makes dispatch order
    deterministic and identical across both cores (at concurrency 1)."""
    edges = [("root", f"leaf{i}") for i in range(12)]  # equal-priority leaves

    def ordered_threadpool():
        order = []

        def execute(node):
            order.append(node.id)

        scheduler = GraphScheduler(make_graph(edges), execute, parallel=True,
                                   max_workers=1)
        run_guarded(scheduler)
        return order

    def ordered_pipeline():
        executor = RecordingExecutor(tiny=tiny)
        scheduler = PipelineScheduler(make_graph(edges), executor=executor,
                                      max_inflight=1, max_workers=1)
        run_guarded(scheduler)
        return executor.order

    baseline = ordered_threadpool()
    assert baseline[0] == "root" and len(baseline) == 13
    # Stable across repeats and across cores.
    assert ordered_threadpool() == baseline
    assert ordered_pipeline() == baseline
    assert ordered_pipeline() == baseline


# ------------------------------------------------------------- backpressure

def test_inflight_window_and_thread_caps_are_respected():
    max_inflight, max_workers = 4, 3
    edges = [("src", f"job{i}") for i in range(24)]
    executor = RecordingExecutor(exec_sleep_s=0.01)
    scheduler = PipelineScheduler(make_graph(edges), executor=executor,
                                  max_inflight=max_inflight,
                                  max_workers=max_workers)
    run_guarded(scheduler)
    assert all(state == NODE_DONE for state in scheduler.states.values())
    assert executor.peak <= max_inflight, "in-flight window exceeded"
    assert executor.peak >= 2, "no overlap at all: pipelining is broken"
    assert executor.pipe_threads_peak <= max_workers
    assert executor.exec_threads_peak <= max_inflight
    assert (executor.pipe_threads_peak + executor.exec_threads_peak
            <= max_workers + max_inflight)
    # Heavy nodes run in the exec lane, never on the dispatcher loop.
    assert all(name.startswith("cwl-exec") for name in executor.threads)


def test_tiny_nodes_run_inline_in_batches_without_pool_threads():
    count = 150
    graph = make_graph([], extra_nodes=[f"t{i}" for i in range(count)])
    executor = RecordingExecutor(tiny=True)
    scheduler = PipelineScheduler(graph, executor=executor, max_inflight=8,
                                  max_workers=4)
    run_guarded(scheduler)
    assert all(state == NODE_DONE for state in scheduler.states.values())
    # Inline on the dispatcher's thread: no pool round-trips at all.
    assert not any(name.startswith(("cwl-pipe", "cwl-exec"))
                   for name in executor.threads)
    timings = scheduler.stage_timings
    assert timings["tiny_nodes"] == count
    expected_batches = -(-count // PipelineScheduler.TINY_BATCH_MAX)
    assert timings["tiny_batches"] == expected_batches


# ----------------------------------------------------------------- failures

def test_on_error_stop_raises_first_failure_without_hanging():
    executor = RecordingExecutor(exec_sleep_s=0.005, fail={"c"})
    scheduler = PipelineScheduler(make_graph(diamond_edges()),
                                  executor=executor, max_inflight=2,
                                  max_workers=2)
    with pytest.raises(WorkflowException, match="node c failed"):
        run_guarded(scheduler)
    assert scheduler.states["c"] == NODE_FAILED
    assert scheduler.states["d"] != NODE_DONE


def test_on_error_continue_matches_threadpool_poisoning():
    edges = [("a", "b"), ("b", "sink"), ("c", "sink2")]

    def execute(node):
        if node.id == "b":
            raise WorkflowException("node b failed")

    reference = GraphScheduler(make_graph(edges), execute, parallel=True,
                               max_workers=2, on_error="continue")
    run_guarded(reference)

    executor = RecordingExecutor(fail={"b"})
    scheduler = PipelineScheduler(make_graph(edges), executor=executor,
                                  max_inflight=2, max_workers=2,
                                  on_error="continue")
    run_guarded(scheduler)

    assert scheduler.states == reference.states
    assert scheduler.states["b"] == NODE_FAILED
    assert scheduler.states["sink"] == NODE_SKIPPED
    assert scheduler.states["c"] == NODE_DONE
    assert scheduler.states["sink2"] == NODE_DONE
    assert set(scheduler.failures) == {"b"}


def test_keyboard_interrupt_unwinds_and_shuts_down_pools():
    edges = [("src", f"job{i}") for i in range(8)]
    executor = RecordingExecutor(exec_sleep_s=0.005, interrupt={"job3"})
    scheduler = PipelineScheduler(make_graph(edges), executor=executor,
                                  max_inflight=2, max_workers=2)
    with pytest.raises(KeyboardInterrupt):
        run_guarded(scheduler)
    # The pools are released (and their references dropped) on the way out.
    assert scheduler._blocking_pool is None and scheduler._exec_pool is None
    deadline = time.time() + 5
    while time.time() < deadline:
        if not any(t.name.startswith(("cwl-pipe", "cwl-exec"))
                   for t in threading.enumerate()):
            break
        time.sleep(0.02)
    assert not any(t.name.startswith(("cwl-pipe", "cwl-exec"))
                   for t in threading.enumerate()), "pool threads leaked"


# ---------------------------------------------------------------- expansion

def test_dynamic_expansion_runs_under_the_pipeline():
    edges = [("scatter", "after")]
    shard_a = GraphNode(id="shard_a", kind="step", step=None, workflow=None)
    shard_b = GraphNode(id="shard_b", kind="step", step=None, workflow=None)
    gather = GraphNode(id="gather", kind="step", step=None, workflow=None)
    expansion = Expansion(
        nodes=[shard_a, shard_b, gather],
        preds={"gather": ["shard_a", "shard_b"]},
        retarget="gather",
    )
    executor = RecordingExecutor(expansions={"scatter": expansion})
    scheduler = PipelineScheduler(make_graph(edges), executor=executor,
                                  max_inflight=4, max_workers=2)
    run_guarded(scheduler)
    assert all(state == NODE_DONE for state in scheduler.states.values())
    order = executor.order
    # Downstream work waited for the gather, shards interleaved before it.
    assert order.index("after") > order.index("gather")
    assert order.index("gather") > order.index("shard_a")
    assert order.index("gather") > order.index("shard_b")


# --------------------------------------------------------------- deep graphs

@pytest.mark.parametrize("core", ["threadpool", "pipeline"])
def test_deep_chain_completes_without_recursion_error(core):
    depth = 3000
    edges = [(f"n{i}", f"n{i + 1}") for i in range(depth - 1)]
    graph = make_graph(edges)
    if core == "threadpool":
        scheduler = GraphScheduler(graph, lambda node: None, parallel=True,
                                   max_workers=2)
    else:
        scheduler = PipelineScheduler(graph, executor=RecordingExecutor(tiny=True),
                                      max_inflight=4, max_workers=2)
    run_guarded(scheduler)
    assert all(state == NODE_DONE for state in scheduler.states.values())


def _fake_chain_workflow(depth, back_edge=False):
    """A duck-typed Workflow whose steps form one ``depth``-long chain."""
    steps = []
    for index in range(depth):
        sources = [f"s{index - 1}/out"] if index else []
        if back_edge and index == 0:
            sources = [f"s{depth - 1}/out"]
        steps.append(SimpleNamespace(
            id=f"s{index}",
            in_=[SimpleNamespace(source=sources)]))
    return SimpleNamespace(steps=steps)


def test_find_step_cycle_iterative_on_10k_chain():
    """Cycle detection is an explicit-stack DFS: a 10k-step chain must not
    hit the interpreter recursion limit (it is ~1000 by default)."""
    assert find_step_cycle(_fake_chain_workflow(10_000)) == []
    cycle = find_step_cycle(_fake_chain_workflow(10_000, back_edge=True))
    assert cycle and cycle[0] == cycle[-1]
    assert len(cycle) == 10_001  # the full loop, in order
