"""Tests for the pure-Python mini-JavaScript engine."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.cwl.errors import JavaScriptError
from repro.cwl.expressions.jsengine import JSEngine, evaluate_expression
from repro.cwl.expressions.jsengine.interpreter import JSThrownError
from repro.cwl.expressions.jsengine.tokenizer import tokenize


# --------------------------------------------------------------------- lexing


def test_tokenizer_basic_stream():
    kinds = [t.kind for t in tokenize("inputs.x + 1")]
    assert kinds == ["identifier", "punct", "identifier", "punct", "number", "eof"]


def test_tokenizer_strings_and_escapes():
    tokens = tokenize("'it\\'s' + \"a\\n\"")
    assert tokens[0].value == "it's"
    assert tokens[2].value == "a\n"


def test_tokenizer_comments_are_skipped():
    tokens = tokenize("1 // line comment\n + /* block */ 2")
    assert [t.value for t in tokens if t.kind == "number"] == ["1", "2"]


def test_tokenizer_rejects_garbage():
    with pytest.raises(JavaScriptError):
        tokenize("a @ b")
    with pytest.raises(JavaScriptError):
        tokenize("'unterminated")


# ---------------------------------------------------------------- expressions


@pytest.mark.parametrize("source,expected", [
    ("1 + 2 * 3", 7),
    ("(1 + 2) * 3", 9),
    ("10 / 4", 2.5),
    ("7 % 3", 1),
    ("2 + 'x'", "2x"),
    ("'a' + 'b'", "ab"),
    ("-5 + 1", -4),
    ("!true", False),
    ("1 < 2 && 2 < 3", True),
    ("1 > 2 || 3 > 2", True),
    ("1 == '1'", True),
    ("1 === '1'", False),
    ("2 != 3", True),
    ("'abc' === 'abc'", True),
    ("true ? 'yes' : 'no'", "yes"),
    ("null", None),
    ("undefined", None),
    ("typeof 'x'", "string"),
    ("typeof 5", "number"),
    ("typeof missing_variable", "undefined"),
    ("[1, 2, 3].length", 3),
    ("'hello'.length", 5),
    ("[1,2,3][1]", 2),
    ("({a: {b: 3}}).a.b", 3),
    ("Math.floor(3.9)", 3),
    ("Math.max(1, 7, 3)", 7),
    ("Math.min(4, 2)", 2),
    ("parseInt('42')", 42),
    ("parseFloat('2.5')", 2.5),
    ("JSON.stringify([1, 2])", "[1, 2]"),
    ("JSON.parse('{\"k\": 1}').k", 1),
    ("'Hello World'.toUpperCase()", "HELLO WORLD"),
    ("'Hello'.toLowerCase()", "hello"),
    ("'a,b,c'.split(',').length", 3),
    ("'  pad  '.trim()", "pad"),
    ("'filename.png'.split('.')[0]", "filename"),
    ("'abcdef'.slice(1, 3)", "bc"),
    ("'abcdef'.substring(2)", "cdef"),
    ("'abc'.charAt(1)", "b"),
    ("'abc'.indexOf('c')", 2),
    ("'abc'.indexOf('z')", -1),
    ("'abc'.includes('b')", True),
    ("'x'.repeat(3)", "xxx"),
    ("['a','b'].join('-')", "a-b"),
    ("[1,2,3].indexOf(2)", 1),
    ("[1,2,3].slice(1).length", 2),
    ("[[1,2],[3]].flat().length", 3),
    ("[1,2,3,4].filter(function(x){ return x % 2 == 0; }).length", 2),
    ("[1,2,3].map(x => x * 10)[2]", 30),
    ("[1,2,3].reduce(function(a, b){ return a + b; }, 0)", 6),
    ("[1,2,3].some(x => x > 2)", True),
    ("[1,2,3].every(x => x > 2)", False),
    ("Object.keys({a:1, b:2}).length", 2),
    ("Array.isArray([1])", True),
    ("Array.isArray('no')", False),
    ("String(42)", "42"),
    ("Number('3') + 1", 4),
    ("Boolean('')", False),
    ("isNaN(parseInt('zz'))", True),
])
def test_expression_results(source, expected):
    assert evaluate_expression(source) == expected


def test_context_variables_visible():
    engine = JSEngine(context={"inputs": {"n": 6, "file": {"basename": "a.txt"}}, "runtime": {"cores": 8}})
    assert engine.evaluate("inputs.n * runtime.cores") == 48
    assert engine.evaluate("inputs.file.basename") == "a.txt"
    assert engine.evaluate("inputs.missing") is None


def test_division_by_zero_matches_js():
    assert evaluate_expression("1 / 0") == float("inf")
    assert math.isnan(evaluate_expression("0 / 0"))


def test_member_on_null_raises():
    with pytest.raises(JavaScriptError):
        evaluate_expression("null.anything")


def test_call_non_function_raises():
    with pytest.raises(JavaScriptError):
        evaluate_expression("(5)(1)")


def test_undefined_variable_reference_raises():
    with pytest.raises(JavaScriptError):
        evaluate_expression("not_defined + 1")


def test_parse_errors_are_javascript_errors():
    for bad in ["1 +", "foo(", "{a: }", "a ? b", "function(){"]:
        with pytest.raises(JavaScriptError):
            evaluate_expression(bad)


# ----------------------------------------------------------------- statements


def test_function_body_with_loop():
    engine = JSEngine(context={"inputs": {"n": 10}})
    body = "var total = 0; for (var i = 1; i <= inputs.n; i++) { total += i; } return total;"
    assert engine.run_function_body(body) == 55


def test_function_body_with_if_else():
    engine = JSEngine(context={"inputs": {"flag": False}})
    assert engine.run_function_body(
        "if (inputs.flag) { return 'on'; } else { return 'off'; }") == "off"


def test_function_body_while_and_break():
    body = """
    var i = 0;
    while (true) {
      i++;
      if (i >= 4) { break; }
    }
    return i;
    """
    assert JSEngine().run_function_body(body) == 4


def test_for_of_and_for_in():
    engine = JSEngine(context={"inputs": {"xs": [2, 3, 4], "obj": {"a": 1, "b": 2}}})
    assert engine.run_function_body(
        "var s = 0; for (var x of inputs.xs) { s += x; } return s;") == 9
    assert engine.run_function_body(
        "var keys = []; for (var k in inputs.obj) { keys.push(k); } return keys.join(',');") == "a,b"


def test_expression_lib_functions_are_callable():
    lib = ["function double(x) { return x * 2; }", "var FACTOR = 10;"]
    engine = JSEngine(context={"inputs": {"v": 3}}, expression_lib=lib)
    assert engine.evaluate("double(inputs.v) + FACTOR") == 16


def test_throw_raises_python_exception():
    with pytest.raises(JSThrownError):
        JSEngine().run_function_body("throw 'bad input';")


def test_function_body_without_return_yields_none():
    assert JSEngine().run_function_body("var x = 1;") is None


def test_runaway_loop_protection():
    with pytest.raises(JavaScriptError):
        JSEngine().run_function_body("while (true) { var x = 1; }")


def test_nested_function_closure():
    body = """
    function makeAdder(n) {
      return function(x) { return x + n; };
    }
    var add5 = makeAdder(5);
    return add5(10);
    """
    assert JSEngine().run_function_body(body) == 15


def test_assignment_operators_and_updates():
    body = "var x = 1; x += 4; x *= 2; x -= 3; x /= 1; return x;"
    assert JSEngine().run_function_body(body) == 7
    assert JSEngine().run_function_body("var i = 0; i++; ++i; return i;") == 2


def test_object_and_array_mutation():
    body = """
    var obj = {count: 0};
    obj.count = obj.count + 1;
    obj['label'] = 'x';
    var arr = [];
    arr[0] = 'first';
    arr.push('second');
    return obj.count + ':' + obj.label + ':' + arr.join('/');
    """
    assert JSEngine().run_function_body(body) == "1:x:first/second"


# ------------------------------------------------------------------- property


@given(a=st.integers(-1000, 1000), b=st.integers(-1000, 1000))
def test_property_integer_arithmetic_matches_python(a, b):
    assert evaluate_expression(f"{a} + {b}") == a + b
    assert evaluate_expression(f"{a} * {b}") == a * b


@given(s=st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=127),
                 max_size=20))
def test_property_string_upper_matches_python(s):
    engine = JSEngine(context={"inputs": {"s": s}})
    assert engine.evaluate("inputs.s.toUpperCase()") == s.upper()
    assert engine.evaluate("inputs.s.length") == len(s)


@given(xs=st.lists(st.integers(-50, 50), max_size=15))
def test_property_array_join_and_length(xs):
    engine = JSEngine(context={"inputs": {"xs": xs}})
    assert engine.evaluate("inputs.xs.length") == len(xs)
    assert engine.evaluate("inputs.xs.join(',')") == ",".join(str(x) for x in xs)


# ------------------------------------------- closure backend vs. interpreter
#
# The compiled closure backend (repro.cwl.expressions.jsengine.closures) is
# the default expression pipeline on three of the four engines; it must agree
# with the uncached tree-walking interpreter on every expression — values
# *and* thrown-error classes.  Expressions are generated from explicit seeds
# (no hypothesis shrink state, no hash-order dependence), so a failure
# reproduces from the seed alone.

from repro.cwl.expressions.jsengine.closures import (  # noqa: E402
    compile_expression_ast,
    shared_library_scope,
)
from repro.cwl.expressions.jsengine.parser import parse_expression  # noqa: E402
import random  # noqa: E402

PARITY_CONTEXT = {
    "inputs": {
        "s": "the quick Brown fox",
        "t": "alpha,beta;gamma",
        "n": 7,
        "m": -3,
        "xs": [3, 1, 2, 9],
        "ws": ["aa", "Bb", "c"],
    }
}


def closure_evaluate(source, context):
    """Evaluate ``source`` through the compiled closure backend."""
    scope = shared_library_scope(())
    return scope.evaluate(compile_expression_ast(parse_expression(source)),
                          context)


def interpreter_evaluate(source, context):
    return evaluate_expression(source, context)


def _random_number_expr(rng, depth):
    if depth <= 0:
        return rng.choice(["inputs.n", "inputs.m", str(rng.randint(0, 9)),
                           "inputs.xs.length", "inputs.xs[1]",
                           "inputs.s.length", "parseInt('42')"])
    a = _random_number_expr(rng, depth - 1)
    b = _random_number_expr(rng, depth - 1)
    return rng.choice([
        f"({a} + {b})", f"({a} - {b})", f"({a} * {b})",
        f"Math.max({a}, {b})", f"Math.min({a}, {b})", f"Math.floor({a})",
        f"({_random_bool_expr(rng, 0)} ? {a} : {b})",
    ])


def _random_string_expr(rng, depth):
    if depth <= 0:
        return rng.choice(["inputs.s", "inputs.t", "'lit'",
                           "inputs.ws[0]", "inputs.ws[2]"])
    a = _random_string_expr(rng, depth - 1)
    return rng.choice([
        f"({a} + {_random_string_expr(rng, depth - 1)})",
        f"{a}.toUpperCase()", f"{a}.toLowerCase()", f"{a}.trim()",
        f"{a}.slice({rng.randint(0, 3)})",
        f"{a}.split(',').join('-')",
        f"{a}.charAt({rng.randint(0, 2)})",
        f"({a} + {_random_number_expr(rng, 0)})",
        f"inputs.ws.join({a})",
    ])


def _random_bool_expr(rng, depth):
    a = _random_number_expr(rng, depth)
    b = _random_number_expr(rng, depth)
    return rng.choice([
        f"({a} < {b})", f"({a} >= {b})", f"({a} == {b})", f"({a} === {b})",
        f"({a} != {b})", f"!({a} < {b})",
    ])


def generate_parity_expression(rng):
    kind = rng.choice([_random_number_expr, _random_string_expr,
                       _random_bool_expr])
    return kind(rng, rng.randint(1, 3))


@pytest.mark.parametrize("seed", range(40))
def test_property_closures_match_interpreter(seed):
    """Seeded random expressions: both backends agree on value or error class."""
    rng = random.Random(seed)
    for _ in range(8):
        source = generate_parity_expression(rng)
        try:
            expected = interpreter_evaluate(source, PARITY_CONTEXT)
            expected_error = None
        except Exception as exc:  # noqa: BLE001 — class compared below
            expected, expected_error = None, type(exc).__name__
        try:
            actual = closure_evaluate(source, PARITY_CONTEXT)
            actual_error = None
        except Exception as exc:  # noqa: BLE001
            actual, actual_error = None, type(exc).__name__
        assert (expected, expected_error) == (actual, actual_error), source


THROWING_EXPRESSIONS = [
    "unknownFunction(1)",
    "inputs.s.noSuchMethod()",
    "inputs.missing.deeper.path",
    "JSON.parse('not json')",
    "inputs.xs.noSuchMethod(1)",
]


@pytest.mark.parametrize("source", THROWING_EXPRESSIONS)
def test_throwing_expressions_agree_on_error_class(source):
    with pytest.raises(Exception) as interpreted:
        interpreter_evaluate(source, PARITY_CONTEXT)
    with pytest.raises(Exception) as compiled:
        closure_evaluate(source, PARITY_CONTEXT)
    # The contract is *agreement*: both backends raise the same class (most
    # raise JavaScriptError; JSON.parse leaks the identical JSONDecodeError
    # from both, which is consistent even if not wrapped).
    assert type(interpreted.value).__name__ == type(compiled.value).__name__, source


def test_closure_library_scope_matches_interpreter_library():
    """expressionLib helpers agree between the two backends too."""
    lib = ["function dub(x) { return x + x; }",
           "var SUFFIX = '!';"]
    scope = shared_library_scope(tuple(lib))
    compiled = scope.evaluate(
        compile_expression_ast(parse_expression("dub(inputs.s) + SUFFIX")),
        PARITY_CONTEXT)
    engine = JSEngine(context=PARITY_CONTEXT, expression_lib=lib)
    assert engine.evaluate("dub(inputs.s) + SUFFIX") == compiled
