"""Tests for document loading/normalisation and the document model."""

from __future__ import annotations

import pytest

from repro.cwl.errors import ValidationException
from repro.cwl.loader import load_document, load_tool
from repro.cwl.schema import CommandLineTool, ExpressionTool, Workflow
from repro.utils.yamlio import dump_yaml


def test_load_echo_tool(cwl_dir):
    tool = load_tool(cwl_dir / "echo.cwl")
    assert isinstance(tool, CommandLineTool)
    assert tool.base_command == ["echo"]
    assert tool.input_ids() == ["message"]
    message = tool.get_input("message")
    assert message.has_default and message.default == "Hello World"
    assert message.input_binding.position == 1
    assert tool.stdout == "hello.txt"
    assert tool.outputs[0].raw_type == "stdout"


def test_load_tool_rejects_workflow(cwl_dir):
    with pytest.raises(ValidationException):
        load_tool(cwl_dir / "image_pipeline.cwl")


def test_load_workflow_steps_and_outputs(cwl_dir):
    workflow = load_document(cwl_dir / "image_pipeline.cwl")
    assert isinstance(workflow, Workflow)
    assert workflow.step_ids() == ["resize_image", "filter_image", "blur_image"]
    step = workflow.get_step("filter_image")
    assert step.embedded_process is not None
    assert step.get_input("input_image").source == ["resize_image/output_image"]
    assert step.get_input("output_image").value_from == "filtered.png"
    assert workflow.workflow_outputs[0].output_source == ["blur_image/output_image"]


def test_scatter_wrapper_loads(cwl_dir):
    workflow = load_document(cwl_dir / "scatter_images.cwl")
    step = workflow.get_step("process_image")
    assert step.scatter == ["input_image"]
    assert step.scatter_method == "dotproduct"
    assert isinstance(step.embedded_process, Workflow)


def test_requirements_as_map_or_list_are_equivalent():
    list_form = load_document({
        "cwlVersion": "v1.2", "class": "CommandLineTool", "baseCommand": "true",
        "requirements": [{"class": "EnvVarRequirement", "envDef": {"X": "1"}}],
        "inputs": {}, "outputs": {},
    })
    map_form = load_document({
        "cwlVersion": "v1.2", "class": "CommandLineTool", "baseCommand": "true",
        "requirements": {"EnvVarRequirement": {"envDef": {"X": "1"}}},
        "inputs": {}, "outputs": {},
    })
    assert list_form.get_requirement("EnvVarRequirement") == \
        map_form.get_requirement("EnvVarRequirement")


def test_inputs_accept_shorthand_types():
    tool = load_document({
        "cwlVersion": "v1.2", "class": "CommandLineTool", "baseCommand": "true",
        "inputs": {"name": "string", "count": "int?"},
        "outputs": {},
    })
    assert tool.get_input("name").type.kind == "string"
    assert tool.get_input("count").type.is_optional


def test_inputs_as_list_with_ids():
    tool = load_document({
        "cwlVersion": "v1.2", "class": "CommandLineTool", "baseCommand": "true",
        "inputs": [{"id": "alpha", "type": "string"}],
        "outputs": [],
    })
    assert tool.input_ids() == ["alpha"]


def test_hash_prefixed_identifiers_are_stripped():
    workflow = load_document({
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"msg": "string"},
        "outputs": {"out": {"type": "File", "outputSource": "#step1/result"}},
        "steps": {
            "step1": {
                "run": {"cwlVersion": "v1.2", "class": "CommandLineTool", "baseCommand": "echo",
                        "inputs": {"msg": {"type": "string", "inputBinding": {"position": 1}}},
                        "outputs": {"result": "stdout"}, "stdout": "o.txt"},
                "in": {"msg": "#msg"},
                "out": ["#result"],
            }
        },
    })
    step = workflow.get_step("step1")
    assert step.get_input("msg").source == ["msg"]
    assert step.out == ["result"]
    assert workflow.workflow_outputs[0].output_source == ["step1/result"]


def test_missing_class_rejected():
    with pytest.raises(ValidationException):
        load_document({"cwlVersion": "v1.2", "inputs": {}, "outputs": {}})


def test_step_without_run_rejected():
    with pytest.raises(ValidationException):
        load_document({
            "cwlVersion": "v1.2", "class": "Workflow", "inputs": {}, "outputs": {},
            "steps": {"broken": {"in": {}, "out": []}},
        })


def test_expression_tool_loading():
    tool = load_document({
        "cwlVersion": "v1.2", "class": "ExpressionTool",
        "requirements": [{"class": "InlineJavascriptRequirement"}],
        "inputs": {"x": "int"},
        "outputs": {"doubled": "int"},
        "expression": "$({'doubled': inputs.x * 2})",
    })
    assert isinstance(tool, ExpressionTool)
    assert "doubled" in tool.output_ids()


def test_graph_documents_resolve_main_and_refs(tmp_path):
    doc = {
        "cwlVersion": "v1.2",
        "$graph": [
            {"id": "echo", "class": "CommandLineTool", "baseCommand": "echo",
             "inputs": {"m": {"type": "string", "inputBinding": {"position": 1}}},
             "outputs": {"o": "stdout"}, "stdout": "x.txt"},
            {"id": "main", "class": "Workflow",
             "inputs": {"m": "string"},
             "outputs": {"final": {"type": "File", "outputSource": "say/o"}},
             "steps": {"say": {"run": "#echo", "in": {"m": "m"}, "out": ["o"]}}},
        ],
    }
    path = tmp_path / "packed.cwl"
    path.write_text(dump_yaml(doc))
    workflow = load_document(path)
    assert isinstance(workflow, Workflow)
    assert isinstance(workflow.get_step("say").embedded_process, CommandLineTool)


def test_graph_without_main_rejected():
    with pytest.raises(ValidationException):
        load_document({"cwlVersion": "v1.2", "$graph": [
            {"id": "only", "class": "CommandLineTool", "baseCommand": "true",
             "inputs": {}, "outputs": {}}]})


def test_process_accessors(cwl_dir):
    tool = load_tool(cwl_dir / "resize_image.cwl")
    assert tool.get_input("missing") is None
    assert tool.get_output("output_image") is not None
    assert tool.get_requirement("DockerRequirement") is None
    assert set(tool.output_ids()) == {"output_image"}
