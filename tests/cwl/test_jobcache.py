"""Unit tests for the content-addressed job cache (repro.cwl.jobcache)."""

from __future__ import annotations

import concurrent.futures
import json
import os
import threading

import pytest

from repro.cwl.jobcache import (
    JobCache,
    file_fingerprint,
    get_job_cache,
    job_key,
    resolve_job_cache,
    stage_file,
)
from repro.cwl.loader import load_document, load_tool
from repro.cwl.runtime import RuntimeContext


def echo_tool(message_default: str = "hi", stdout: str = "out.txt") -> dict:
    return {
        "class": "CommandLineTool",
        "baseCommand": "echo",
        "inputs": {"message": {"type": "string", "default": message_default,
                               "inputBinding": {"position": 1}}},
        "outputs": {"out": "stdout"},
        "stdout": stdout,
    }


# ----------------------------------------------------------------- stage_file


def test_stage_file_hardlinks_on_same_filesystem(tmp_path):
    source = tmp_path / "src.txt"
    source.write_text("payload")
    destination = tmp_path / "nested" / "dst.txt"
    how = stage_file(str(source), str(destination))
    assert how == "link"
    assert destination.read_text() == "payload"
    assert os.stat(source).st_ino == os.stat(destination).st_ino


def test_stage_file_prefer_copy_never_links(tmp_path):
    source = tmp_path / "src.txt"
    source.write_text("payload")
    destination = tmp_path / "dst.txt"
    how = stage_file(str(source), str(destination), prefer_copy=True)
    assert how == "copy"
    assert destination.read_text() == "payload"
    assert os.stat(source).st_ino != os.stat(destination).st_ino


def test_stage_file_overwrite_replaces_and_kept_preserves(tmp_path):
    source = tmp_path / "src.txt"
    source.write_text("new")
    destination = tmp_path / "dst.txt"
    destination.write_text("old")
    assert stage_file(str(source), str(destination), overwrite=False) == "kept"
    assert destination.read_text() == "old"
    stage_file(str(source), str(destination))
    assert destination.read_text() == "new"


# ----------------------------------------------------------------- fingerprints


def test_file_fingerprint_tracks_content_not_path(tmp_path):
    a = tmp_path / "a.txt"
    b = tmp_path / "b.txt"
    a.write_text("same content")
    b.write_text("same content")
    assert file_fingerprint(str(a)) == file_fingerprint(str(b))
    b.write_text("different content")
    assert file_fingerprint(str(a)) != file_fingerprint(str(b))


def test_job_key_stable_across_processes_and_orderings(tmp_path):
    tool = load_tool(echo_tool())
    again = load_tool(echo_tool())
    key_one = job_key(tool, {"a": 1, "b": 2}, cores=1, ram_mb=1024)
    key_two = job_key(again, {"b": 2, "a": 1}, cores=1, ram_mb=1024)
    assert key_one == key_two


def test_job_key_treats_none_as_omitted(tmp_path):
    tool = load_tool(echo_tool())
    explicit = job_key(tool, {"message": "x", "opt": None}, cores=1, ram_mb=1024)
    omitted = job_key(tool, {"message": "x"}, cores=1, ram_mb=1024)
    assert explicit == omitted


def test_job_key_invalidates_on_tool_document_edit():
    key_one = job_key(load_tool(echo_tool()), {"message": "x"}, cores=1, ram_mb=1024)
    key_two = job_key(load_tool(echo_tool(stdout="other.txt")), {"message": "x"},
                      cores=1, ram_mb=1024)
    assert key_one != key_two


def test_job_key_invalidates_on_input_file_content_change(tmp_path):
    tool = load_tool(echo_tool())
    data = tmp_path / "input.txt"
    data.write_text("v1")
    order = {"message": "x",
             "extra": {"class": "File", "path": str(data), "basename": "input.txt"}}
    key_one = job_key(tool, order, cores=1, ram_mb=1024)
    data.write_text("v2")
    key_two = job_key(tool, order, cores=1, ram_mb=1024)
    assert key_one != key_two


def test_job_key_ignores_input_file_location(tmp_path):
    """Same content at a different path fingerprints identically."""
    tool = load_tool(echo_tool())
    (tmp_path / "a").mkdir(), (tmp_path / "b").mkdir()
    one, two = tmp_path / "a" / "f.txt", tmp_path / "b" / "f.txt"
    one.write_text("identical"), two.write_text("identical")
    key_one = job_key(tool, {"f": {"class": "File", "path": str(one), "basename": "f.txt"}},
                      cores=1, ram_mb=1024)
    key_two = job_key(tool, {"f": {"class": "File", "path": str(two), "basename": "f.txt"}},
                      cores=1, ram_mb=1024)
    assert key_one == key_two


def test_job_key_invalidates_on_runtime_resources_and_env():
    tool = load_tool(echo_tool())
    base = job_key(tool, {"message": "x"}, cores=1, ram_mb=1024)
    assert job_key(tool, {"message": "x"}, cores=4, ram_mb=1024) != base
    assert job_key(tool, {"message": "x"}, cores=1, ram_mb=2048) != base
    assert job_key(tool, {"message": "x"}, cores=1, ram_mb=1024,
                   extra_env={"MODE": "fast"}) != base


# ---------------------------------------------------------------------- store


def test_store_and_restore_roundtrip(tmp_path):
    cache = JobCache(str(tmp_path / "store"))
    outdir = tmp_path / "job"
    (outdir / "sub").mkdir(parents=True)
    (outdir / "result.txt").write_text("result body")
    (outdir / "sub" / "nested.txt").write_text("nested body")

    cache.store_outdir("k1", str(outdir), stdout_name="result.txt")
    entry = cache.lookup("k1")
    assert entry is not None and entry.stream_name("stdout") == "result.txt"

    restored = tmp_path / "restored"
    cache.restore(entry, str(restored))
    assert (restored / "result.txt").read_text() == "result body"
    assert (restored / "sub" / "nested.txt").read_text() == "nested body"
    # Zero-copy: the restored file shares its inode with the CAS body.
    cas_body = cache.cas_body(entry, "result.txt")
    assert os.stat(cas_body).st_ino == os.stat(restored / "result.txt").st_ino
    assert cache.snapshot()["hits"] == 1


def test_lookup_miss_and_stats(tmp_path):
    cache = JobCache(str(tmp_path / "store"))
    assert cache.lookup("nope") is None
    assert cache.snapshot() == {"hits": 0, "misses": 1, "stores": 0, "restored_files": 0}


def test_truncated_cas_body_invalidates_entry(tmp_path):
    cache = JobCache(str(tmp_path / "store"))
    outdir = tmp_path / "job"
    outdir.mkdir()
    (outdir / "out.txt").write_text("full body here")
    entry = cache.store_outdir("k1", str(outdir))
    # Simulate an in-place rewrite of a hardlinked body.
    with open(cache.cas_body(entry, "out.txt"), "w") as handle:
        handle.write("x")
    assert cache.lookup("k1") is None


def test_store_files_refuses_paths_outside_outdir(tmp_path):
    cache = JobCache(str(tmp_path / "store"))
    outside = tmp_path / "outside.txt"
    outside.write_text("not cacheable")
    assert cache.store_files("k1", str(tmp_path / "job"), [str(outside)]) is None
    assert cache.lookup("k1", record=False) is None


def test_get_job_cache_shares_instances_per_directory(tmp_path):
    one = get_job_cache(str(tmp_path / "store"))
    two = get_job_cache(str(tmp_path / "store"))
    other = get_job_cache(str(tmp_path / "elsewhere"))
    assert one is two and one is not other
    assert resolve_job_cache(one) is one
    assert resolve_job_cache(None) is None
    assert resolve_job_cache(False) is None


def test_concurrent_writers_one_store_no_corruption(tmp_path):
    """Concurrent scatter shards storing and reading the same keys must never
    corrupt the store: every lookup sees either a miss or a fully valid entry."""
    cache = JobCache(str(tmp_path / "store"))
    sources = []
    for index in range(8):
        outdir = tmp_path / f"job{index}"
        outdir.mkdir()
        (outdir / "shard.txt").write_text(f"shard body {index % 4}")
        sources.append(str(outdir))

    def worker(index: int) -> str:
        key = f"key{index % 4}"
        cache.store_outdir(key, sources[index], stdout_name="shard.txt")
        entry = cache.lookup(key)
        assert entry is not None
        restored = tmp_path / f"restored-{index}-{threading.get_ident()}"
        cache.restore(entry, str(restored))
        return (restored / "shard.txt").read_text()

    with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
        results = list(pool.map(worker, range(8)))
    for index, body in enumerate(results):
        assert body == f"shard body {index % 4}"
    # Manifests stayed valid JSON throughout.
    for name in os.listdir(cache.entries_dir):
        with open(os.path.join(cache.entries_dir, name)) as handle:
            json.load(handle)


# ---------------------------------------------------- RuntimeContext tri-state


def test_runtime_context_job_cache_tristate(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_JOBCACHE_DIR", raising=False)
    assert RuntimeContext().job_cache_dir() is None
    assert RuntimeContext(cache_dir=str(tmp_path)).job_cache_dir() == str(tmp_path)
    assert RuntimeContext(cache_dir=str(tmp_path), job_cache=False).job_cache_dir() is None
    assert RuntimeContext(job_cache=True).job_cache_dir() is not None
    monkeypatch.setenv("REPRO_JOBCACHE_DIR", str(tmp_path / "env-store"))
    assert RuntimeContext().job_cache_dir() == str(tmp_path / "env-store")
    assert RuntimeContext(job_cache=False).job_cache_dir() is None


def test_workflow_scatter_shards_share_one_store(tmp_path):
    """End-to-end: a scattered workflow's concurrent shards populate one store
    cold and all hit warm (reference runner, parallel pool)."""
    from repro import api

    doc = {
        "cwlVersion": "v1.2", "class": "Workflow",
        "requirements": [{"class": "ScatterFeatureRequirement"}],
        "inputs": {"messages": "string[]"},
        "outputs": {"outs": {"type": "File[]", "outputSource": "shout/out"}},
        "steps": {
            "shout": {
                "run": {
                    "class": "CommandLineTool", "baseCommand": "echo",
                    "inputs": {"message": {"type": "string",
                                           "inputBinding": {"position": 1}}},
                    "outputs": {"out": "stdout"}, "stdout": "shout.txt",
                },
                "scatter": "message",
                "in": {"message": "messages"},
                "out": ["out"],
            },
        },
    }
    store = tmp_path / "store"
    messages = [f"msg {i}" for i in range(6)]
    order = {"messages": messages}

    def run():
        return api.run(load_document(dict(doc)), dict(order), engine="reference",
                       parallel=True, max_workers=4, cache_dir=str(store),
                       runtime_context=RuntimeContext(basedir=str(tmp_path / "wd")))

    cold = run()
    assert cold.cache_stats == {"hits": 0, "misses": len(messages)}
    warm = run()
    assert warm.cache_stats == {"hits": len(messages), "misses": 0}
    for cold_file, warm_file in zip(cold.outputs["outs"], warm.outputs["outs"]):
        with open(cold_file["path"], "rb") as a, open(warm_file["path"], "rb") as b:
            assert a.read() == b.read()


# ---------------------------------------------------- fingerprint memoization

def test_file_fingerprint_memoizes_and_invalidates(tmp_path, monkeypatch):
    """N consumers of one input hash it once; size or mtime changes re-hash.

    The memo key is (realpath, size, mtime_ns): repeated fingerprints of an
    unchanged file never re-read its content, while any visible change —
    different size, same size but newer mtime — drops straight through to a
    fresh content hash.
    """
    import repro.cwl.jobcache as jobcache

    hashed = []
    real_hash_file = jobcache.hash_file

    def counting_hash_file(path):
        hashed.append(path)
        return real_hash_file(path)

    monkeypatch.setattr(jobcache, "hash_file", counting_hash_file)

    data = tmp_path / "input.txt"
    data.write_text("one")
    first = file_fingerprint(str(data))
    for _ in range(5):  # five more consumers of the same unchanged file
        assert file_fingerprint(str(data)) == first
    assert len(hashed) == 1, "unchanged file was re-hashed"

    data.write_text("two!")  # different size -> different memo key
    second = file_fingerprint(str(data))
    assert second != first and len(hashed) == 2

    data.write_text("tri!")  # same size as "two!"; bump mtime explicitly
    stat = os.stat(data)
    os.utime(data, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
    third = file_fingerprint(str(data))
    assert third != second and len(hashed) == 3

    # Symlinks resolve to the realpath: no duplicate hashing via an alias.
    alias = tmp_path / "alias.txt"
    alias.symlink_to(data)
    assert file_fingerprint(str(alias)) == third
    assert len(hashed) == 3
