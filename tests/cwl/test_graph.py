"""Tests for the workflow dataflow IR (repro.cwl.graph)."""

from __future__ import annotations

import os

import pytest

from repro.cwl.errors import ValidationException, WorkflowException
from repro.cwl.graph import (
    EGRESS,
    INGRESS,
    SCATTER,
    STEP,
    build_graph,
    find_step_cycle,
    resolve_run_reference,
    seed_workflow_inputs,
)
from repro.cwl.loader import load_document

SIMPLE_TOOL = {
    "class": "CommandLineTool", "baseCommand": "x",
    "inputs": {"value": "Any"},
    "outputs": {"out": {"type": "Any", "outputBinding": {"outputEval": "$(1)"}}},
}


def make_workflow(doc):
    return load_document(doc)


def pipeline_workflow():
    """resize -> filter -> blur plus an independent side step."""
    return make_workflow({
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"start": "int"},
        "outputs": {"final": {"type": "Any", "outputSource": "blur/out"}},
        "steps": {
            "resize": {"run": dict(SIMPLE_TOOL), "in": {"value": "start"}, "out": ["out"]},
            "filter": {"run": dict(SIMPLE_TOOL), "in": {"value": "resize/out"}, "out": ["out"]},
            "blur": {"run": dict(SIMPLE_TOOL), "in": {"value": "filter/out"}, "out": ["out"]},
            "side": {"run": dict(SIMPLE_TOOL), "in": {"value": "start"}, "out": ["out"]},
        },
    })


# --------------------------------------------------------------------- builds

def test_linear_chain_nodes_edges_and_priorities():
    graph = build_graph(pipeline_workflow())
    assert set(graph.nodes) == {"resize", "filter", "blur", "side"}
    assert graph.indegree == {"resize": 0, "filter": 1, "blur": 1, "side": 0}
    assert ("resize", "filter") in graph.edges()
    assert ("filter", "blur") in graph.edges()
    # Critical-path priorities: length of the longest dependent chain.
    assert graph.nodes["resize"].priority == 3
    assert graph.nodes["filter"].priority == 2
    assert graph.nodes["blur"].priority == 1
    assert graph.nodes["side"].priority == 1
    assert graph.critical_path() == ["resize", "filter", "blur"]


def test_topological_order_is_dependency_consistent():
    graph = build_graph(pipeline_workflow())
    order = graph.topological_order()
    for pred, succ in graph.edges():
        assert order.index(pred) < order.index(succ)


def test_scatter_step_is_a_single_expandable_node():
    workflow = make_workflow({
        "cwlVersion": "v1.2", "class": "Workflow",
        "requirements": [{"class": "ScatterFeatureRequirement"}],
        "inputs": {"values": "int[]"},
        "outputs": {"all": {"type": "Any[]", "outputSource": "per_value/out"}},
        "steps": {
            "per_value": {"run": dict(SIMPLE_TOOL), "scatter": "value",
                          "in": {"value": "values"}, "out": ["out"]},
        },
    })
    graph = build_graph(workflow)
    assert graph.nodes["per_value"].kind == SCATTER
    description = graph.describe()
    (node,) = description["nodes"]
    assert node["scatter"] is True


def test_subworkflow_is_flattened_with_ingress_and_egress():
    child = {
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"value": "Any"},
        "outputs": {"result": {"type": "Any", "outputSource": "inner/out"}},
        "steps": {"inner": {"run": dict(SIMPLE_TOOL), "in": {"value": "value"},
                            "out": ["out"]}},
    }
    parent = make_workflow({
        "cwlVersion": "v1.2", "class": "Workflow",
        "requirements": [{"class": "SubworkflowFeatureRequirement"}],
        "inputs": {"start": "int"},
        "outputs": {"final": {"type": "Any", "outputSource": "sub/result"}},
        "steps": {
            "sub": {"run": child, "in": {"value": "start"}, "out": ["result"]},
            "after": {"run": dict(SIMPLE_TOOL), "in": {"value": "sub/result"},
                      "out": ["out"]},
        },
    })
    graph = build_graph(parent)
    assert set(graph.nodes) == {"sub@in", "sub/inner", "sub@out", "after"}
    assert graph.nodes["sub@in"].kind == INGRESS
    assert graph.nodes["sub/inner"].kind == STEP
    assert graph.nodes["sub/inner"].scope == "sub/"
    assert graph.nodes["sub@out"].kind == EGRESS
    # Dataflow: ingress -> inner -> egress -> after.
    edges = graph.edges()
    assert ("sub@in", "sub/inner") in edges
    assert ("sub/inner", "sub@out") in edges
    assert ("sub@out", "after") in edges


def test_flattening_can_be_disabled():
    child = {
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"value": "Any"},
        "outputs": {"result": {"type": "Any", "outputSource": "inner/out"}},
        "steps": {"inner": {"run": dict(SIMPLE_TOOL), "in": {"value": "value"},
                            "out": ["out"]}},
    }
    parent = make_workflow({
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"start": "int"},
        "outputs": {"final": {"type": "Any", "outputSource": "sub/result"}},
        "steps": {"sub": {"run": child, "in": {"value": "start"}, "out": ["result"]}},
    })
    graph = build_graph(parent, flatten_subworkflows=False)
    assert set(graph.nodes) == {"sub"}
    assert graph.nodes["sub"].kind == STEP


# --------------------------------------------------------------------- errors

def test_cycle_raises_naming_the_steps():
    workflow = make_workflow({
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"seed": "int"},
        "outputs": {},
        "steps": {
            "a": {"run": dict(SIMPLE_TOOL), "in": {"value": "c/out"}, "out": ["out"]},
            "b": {"run": dict(SIMPLE_TOOL), "in": {"value": "a/out"}, "out": ["out"]},
            "c": {"run": dict(SIMPLE_TOOL), "in": {"value": "b/out"}, "out": ["out"]},
        },
    })
    with pytest.raises(ValidationException) as excinfo:
        build_graph(workflow)
    message = str(excinfo.value)
    assert "cycle" in message
    for step_id in ("a", "b", "c"):
        assert step_id in message


def test_find_step_cycle_returns_cycle_in_order():
    workflow = make_workflow({
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"seed": "int"},
        "outputs": {},
        "steps": {
            "a": {"run": dict(SIMPLE_TOOL), "in": {"value": "b/out"}, "out": ["out"]},
            "b": {"run": dict(SIMPLE_TOOL), "in": {"value": "a/out"}, "out": ["out"]},
        },
    })
    cycle = find_step_cycle(workflow)
    assert len(cycle) == 3 and cycle[0] == cycle[-1]
    assert set(cycle) == {"a", "b"}


def test_acyclic_workflow_has_no_cycle():
    assert find_step_cycle(pipeline_workflow()) == []


def test_unknown_source_raises_at_build_time():
    workflow = make_workflow({
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {"seed": "int"},
        "outputs": {},
        "steps": {"a": {"run": dict(SIMPLE_TOOL), "in": {"value": "ghost/out"},
                        "out": ["out"]}},
    })
    with pytest.raises(WorkflowException, match="unknown step output"):
        build_graph(workflow)


# -------------------------------------------------------- shared helpers

def test_resolve_run_reference_handles_relative_forms():
    assert resolve_run_reference("tool.cwl", "/wf/pipeline.cwl") == "/wf/tool.cwl"
    assert resolve_run_reference("./tool.cwl", "/wf/pipeline.cwl") == "/wf/tool.cwl"
    assert resolve_run_reference("../tools/t.cwl", "/wf/sub/p.cwl") == "/wf/tools/t.cwl"
    assert resolve_run_reference("/abs/t.cwl", "/wf/p.cwl") == os.path.normpath("/abs/t.cwl")
    assert resolve_run_reference("t.cwl", None) == "t.cwl"


def test_seed_workflow_inputs_defaults_optionals_and_required():
    workflow = make_workflow({
        "cwlVersion": "v1.2", "class": "Workflow",
        "inputs": {
            "required": "int",
            "defaulted": {"type": "int", "default": 7},
            "optional": "int?",
        },
        "outputs": {},
        "steps": {"s": {"run": dict(SIMPLE_TOOL), "in": {"value": "required"},
                        "out": ["out"]}},
    })
    values = seed_workflow_inputs(workflow, {"required": 1})
    assert values == {"required": 1, "defaulted": 7, "optional": None}
    with pytest.raises(ValidationException, match="required"):
        seed_workflow_inputs(workflow, {})
    with pytest.raises(WorkflowException, match="required"):
        seed_workflow_inputs(workflow, {}, error=WorkflowException)


def test_describe_is_json_ready():
    import json

    description = build_graph(pipeline_workflow()).describe()
    payload = json.loads(json.dumps(description))
    assert payload["node_count"] == 4
    assert payload["edge_count"] == 2
    assert payload["critical_path"] == ["resize", "filter", "blur"]
    assert payload["critical_path_length"] == 3
