"""Tests for the compiled-expression pipeline.

Correctness is defined by equivalence: for every expression the compiled
evaluator must produce exactly what the uncached cwltool-fidelity evaluator
produces, including value types and error messages.  On top of that the
caching layers themselves are exercised — the bounded template LRU, library
fingerprint invalidation, the memoized scanners, the precompiled-process
pass, the loader's sub-document cache and the copy-on-write job views.
"""

from __future__ import annotations

import threading

import pytest

from repro.cwl.cow import job_order_view
from repro.cwl.errors import ExpressionError
from repro.cwl.expressions.compiler import (
    CompiledEvaluator,
    CompiledTemplate,
    _CompileCache,
    clear_compile_cache,
    compile_cache_stats,
    compile_template,
    precompile_process,
)
from repro.cwl.expressions.evaluator import ExpressionEvaluator
from repro.cwl.expressions.jsengine.closures import shared_library_scope
from repro.cwl.expressions.paramrefs import (
    is_simple_parameter_reference,
    scan_expressions,
    tokenize_path,
)
from repro.cwl.loader import clear_document_cache, load_document, load_document_cached

JS_LIB = """
function shout(word) { return word.toUpperCase() + "!"; }
function total(xs) {
  var sum = 0;
  for (var i = 0; i < xs.length; i++) { sum += xs[i]; }
  return sum;
}
"""

CONTEXT = {
    "inputs": {
        "word": "hello",
        "count": 3,
        "flag": True,
        "values": [1, 2, 3, 4],
        "file": {"class": "File", "path": "/data/x.tar.gz", "basename": "x.tar.gz",
                 "size": 120},
        "maybe": None,
    },
    "runtime": {"cores": 4, "outdir": "/out"},
    "self": None,
}

#: A grid covering every template kind and expression classification.
PARITY_CASES = [
    "plain string, no expressions",
    r"escaped \$(not.an.expression) dollar",
    "$(inputs.word)",
    "$(inputs.count)",
    "$(inputs.flag)",
    "$(inputs.values)",
    "$(inputs.values[2])",
    "$(inputs.file.basename)",
    "$(inputs['file']['size'])",
    "$(inputs.maybe)",
    "$(runtime.cores)",
    "$(inputs.word.toUpperCase())",
    "$(shout(inputs.word))",
    "$(total(inputs.values))",
    "$(inputs.values.map(function(x){ return x * 2; }))",
    "$(inputs.count > 2 ? 'many' : 'few')",
    "${ return shout(inputs.word); }",
    "${ var n = total(inputs.values); return n + inputs.count; }",
    "word=$(inputs.word) count=$(inputs.count)",
    "mixed $(shout(inputs.word)) and ${ return inputs.count * 2; } tail",
    "  $(inputs.word)",
    "$(inputs.word)  ",
    "$(inputs.file.basename.split('.')[0])",
]


@pytest.fixture
def compiled():
    return CompiledEvaluator(expression_lib=[JS_LIB])


@pytest.fixture
def uncached():
    return ExpressionEvaluator(expression_lib=[JS_LIB], cache_engine=False)


@pytest.mark.parametrize("source", PARITY_CASES)
def test_compiled_matches_uncached(source, compiled, uncached):
    expected = uncached.evaluate(source, CONTEXT)
    actual = compiled.evaluate(source, CONTEXT)
    assert actual == expected
    assert type(actual) is type(expected)


def test_compiled_matches_uncached_repeatedly(compiled, uncached):
    """Second and later evaluations come from caches — results must not drift."""
    for _ in range(3):
        for source in PARITY_CASES:
            assert compiled.evaluate(source, CONTEXT) == uncached.evaluate(source, CONTEXT)


def test_compiled_evaluate_structure(compiled, uncached):
    structure = {"a": "$(inputs.word)", "b": ["$(inputs.count)", {"c": "${ return 1; }"}]}
    assert compiled.evaluate_structure(structure, CONTEXT) == \
        uncached.evaluate_structure(structure, CONTEXT)


def test_compiled_non_string_passthrough(compiled):
    assert compiled.evaluate(42, CONTEXT) == 42
    assert compiled.evaluate(None, CONTEXT) is None
    assert compiled.evaluate(["$(inputs.word)"], CONTEXT) == ["$(inputs.word)"]


def test_js_disabled_error_message_parity():
    compiled = CompiledEvaluator(js_enabled=False)
    uncached = ExpressionEvaluator(js_enabled=False)
    for source in ("$(inputs.word.toUpperCase())", "${ return 1; }"):
        with pytest.raises(ExpressionError) as compiled_error:
            compiled.evaluate(source, CONTEXT)
        with pytest.raises(ExpressionError) as uncached_error:
            uncached.evaluate(source, CONTEXT)
        assert str(compiled_error.value) == str(uncached_error.value)
    # Simple parameter references still work without JS, as the spec requires.
    assert compiled.evaluate("$(inputs.word)", CONTEXT) == "hello"


def test_shared_library_scope_reused():
    first = CompiledEvaluator(expression_lib=[JS_LIB])
    second = CompiledEvaluator(expression_lib=[JS_LIB])
    different = CompiledEvaluator(expression_lib=[JS_LIB + "\nvar extra = 1;"])
    assert first.scope is second.scope
    assert first.scope is not different.scope


def test_library_change_invalidates_cache():
    """Same source string, different expressionLib content → recompiled, new result."""
    lib_a = "function tag(w) { return 'A:' + w; }"
    lib_b = "function tag(w) { return 'B:' + w; }"
    source = "$(tag(inputs.word))"
    evaluator_a = CompiledEvaluator(expression_lib=[lib_a])
    evaluator_b = CompiledEvaluator(expression_lib=[lib_b])
    assert evaluator_a.evaluate(source, CONTEXT) == "A:hello"
    assert evaluator_b.evaluate(source, CONTEXT) == "B:hello"
    # And the original is untouched by the second compilation.
    assert evaluator_a.evaluate(source, CONTEXT) == "A:hello"
    assert evaluator_a.scope.fingerprint != evaluator_b.scope.fingerprint


def test_template_cache_keyed_by_fingerprint():
    clear_compile_cache()
    template_a = compile_template("$(inputs.word)", True, "fp-a")
    template_b = compile_template("$(inputs.word)", True, "fp-b")
    template_a_again = compile_template("$(inputs.word)", True, "fp-a")
    assert template_a is template_a_again
    assert template_a is not template_b
    stats = compile_cache_stats()
    assert stats["hits"] >= 1 and stats["misses"] >= 2


def test_template_cache_is_bounded():
    cache = _CompileCache(maxsize=8)
    for index in range(50):
        cache.get_or_compile(f"literal-{index}", True, "")
    assert cache.stats()["size"] <= 8


def test_template_classification():
    assert CompiledTemplate("just text").kind == "plain"
    assert CompiledTemplate("$(inputs.word)").kind == "single"
    assert CompiledTemplate("a $(inputs.word) b").kind == "interpolate"
    assert CompiledTemplate("$(inputs.word)").single.kind == "param"
    assert CompiledTemplate("$(shout(inputs.word))").single.kind == "js"
    assert CompiledTemplate("${ return 1; }").single.kind == "body"


def test_compiled_evaluator_is_thread_safe():
    """One shared evaluator, many threads, per-thread contexts — no cross-talk."""
    evaluator = CompiledEvaluator(expression_lib=[JS_LIB])
    errors = []

    def worker(tag: str) -> None:
        try:
            for index in range(200):
                context = {"inputs": {"word": f"{tag}{index}", "count": index,
                                      "values": [index], "flag": True,
                                      "file": CONTEXT["inputs"]["file"], "maybe": None},
                           "runtime": {}, "self": None}
                assert evaluator.evaluate("$(shout(inputs.word))", context) == \
                    f"{tag.upper()}{index}!"
                assert evaluator.evaluate("${ return inputs.count + 1; }", context) == index + 1
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(tag,)) for tag in ("aa", "bb", "cc", "dd")]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors


# ------------------------------------------------------------ memoized scanners


def test_scan_expressions_memoized():
    scan_expressions.cache_clear()
    text = "scatter $(inputs.word) over $(inputs.count) jobs"
    first = scan_expressions(text)
    hits_before = scan_expressions.cache_info().hits
    second = scan_expressions(text)
    assert second is first  # literally the cached tuple
    assert scan_expressions.cache_info().hits == hits_before + 1


def test_simple_reference_classifier_memoized():
    is_simple_parameter_reference.cache_clear()
    assert is_simple_parameter_reference("inputs.word")
    hits_before = is_simple_parameter_reference.cache_info().hits
    for _ in range(5):
        assert is_simple_parameter_reference("inputs.word")
    assert is_simple_parameter_reference.cache_info().hits == hits_before + 5


def test_tokenize_path_memoized():
    tokenize_path.cache_clear()
    assert tokenize_path("inputs.values[0]") == ("inputs", "values", 0)
    assert tokenize_path.cache_info().currsize == 1
    tokenize_path("inputs.values[0]")
    assert tokenize_path.cache_info().hits >= 1


# --------------------------------------------------------- precompiled process


def test_precompile_process_pins_every_expression(cwl_dir):
    tool = load_document(str(cwl_dir / "capitalize_js.cwl"))
    compilation = precompile_process(tool)
    # The argument expression and the stdout name, at minimum.
    assert compilation.expression_count >= 2
    assert compilation.skipped == 0
    assert tool.compiled is compilation
    assert precompile_process(tool) is compilation  # memoized
    # The argument template is pinned on the evaluator, not just in the LRU.
    assert "$(capitalizeWords(inputs.message))" in compilation.evaluator._pinned


def test_precompile_workflow_recurses_into_steps(cwl_dir):
    workflow = load_document(str(cwl_dir / "image_pipeline.cwl"))
    precompile_process(workflow)
    assert workflow.compiled is not None
    for step in workflow.steps:
        if step.embedded_process is not None:
            assert step.embedded_process.compiled is not None


# ------------------------------------------------------------------- cow views


def test_job_order_view_isolates_containers():
    original = {"file": {"class": "File", "path": "/p", "basename": "p"},
                "values": [1, 2, [3]], "word": "w"}
    view = job_order_view(original)
    assert view == original
    view["file"]["checksum"] = "sha1$deadbeef"
    view["values"].append(4)
    view["values"][2].append(5)
    assert "checksum" not in original["file"]
    assert original["values"] == [1, 2, [3]]
    # Leaves are shared, not copied.
    assert view["word"] is original["word"]


# --------------------------------------------------------------- loader cache


def test_load_document_cached_shares_and_invalidates(tmp_path):
    clear_document_cache()
    document = tmp_path / "tool.cwl"
    document.write_text(
        "cwlVersion: v1.2\nclass: CommandLineTool\nid: cached_tool\n"
        "baseCommand: echo\ninputs: []\noutputs: []\n"
    )
    first = load_document_cached(document)
    second = load_document_cached(document)
    assert first is second
    # A content change (different size) must invalidate the entry.
    document.write_text(
        "cwlVersion: v1.2\nclass: CommandLineTool\nid: cached_tool_v2\n"
        "baseCommand: echo\ninputs: []\noutputs: []\n"
    )
    third = load_document_cached(document)
    assert third is not first
    assert third.id == "cached_tool_v2"


def test_load_document_cached_invalidates_on_embedded_change(tmp_path):
    """Editing a run: sub-file must invalidate the cached *parent* workflow."""
    clear_document_cache()
    tool = tmp_path / "tool.cwl"
    tool.write_text(
        "cwlVersion: v1.2\nclass: CommandLineTool\nid: child_v1\n"
        "baseCommand: echo\ninputs: []\noutputs: []\n"
    )
    workflow = tmp_path / "wf.cwl"
    workflow.write_text(
        "cwlVersion: v1.2\nclass: Workflow\nid: parent\n"
        "inputs: []\noutputs: []\n"
        "steps:\n  one:\n    run: tool.cwl\n    in: {}\n    out: []\n"
    )
    first = load_document_cached(workflow)
    assert first.steps[0].embedded_process.id == "child_v1"
    tool.write_text(
        "cwlVersion: v1.2\nclass: CommandLineTool\nid: child_v2!\n"
        "baseCommand: echo\ninputs: []\noutputs: []\n"
    )
    second = load_document_cached(workflow)
    assert second is not first
    assert second.steps[0].embedded_process.id == "child_v2!"


def test_workflow_step_evaluator_matches_uncompiled_semantics(cwl_dir):
    """Step-level expressions must not gain expressionLib access in compiled
    mode — both modes see the same (lib-less) evaluation environment."""
    from repro.cwl.runtime import RuntimeContext
    from repro.cwl.workflow import WorkflowEngine

    workflow = load_document(str(cwl_dir / "image_pipeline.cwl"))
    compiled_engine = WorkflowEngine(
        workflow, process_runner=lambda *a: {},
        runtime_context=RuntimeContext(compile_expressions=True))
    uncompiled_engine = WorkflowEngine(
        workflow, process_runner=lambda *a: {},
        runtime_context=RuntimeContext(compile_expressions=False))
    compiled_evaluator = compiled_engine._step_evaluator()
    assert compiled_evaluator.expression_lib == []
    context = {"inputs": {"x": 2}, "self": None, "runtime": {}}
    assert compiled_evaluator.evaluate("$(inputs.x * 2)", context) == \
        uncompiled_engine._step_evaluator().evaluate("$(inputs.x * 2)", context)
