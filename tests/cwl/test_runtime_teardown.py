"""RuntimeContext scratch-directory teardown (idempotent, parent-pruning)."""

from __future__ import annotations

import os
import threading

from repro.cwl.runtime import RuntimeContext


def test_cleanup_dir_removes_scratch_and_created_parents(tmp_path):
    staging = tmp_path / "staging" / "deep"
    context = RuntimeContext(tmpdir_prefix=str(staging / "tmp-"))
    scratch = context.make_tmpdir()
    assert os.path.isdir(scratch) and str(scratch).startswith(str(staging))

    context.cleanup_dir(scratch)
    assert not os.path.exists(scratch)
    # The empty staging parent the context itself created is pruned too
    # (a bare rmtree(..., ignore_errors=True) used to leave it behind).
    assert not os.path.exists(staging)


def test_cleanup_dir_keeps_nonempty_and_foreign_parents(tmp_path):
    staging = tmp_path / "staging"
    context = RuntimeContext(tmpdir_prefix=str(staging / "tmp-"))
    scratch = context.make_tmpdir()
    keeper = staging / "keep.txt"
    keeper.write_text("still needed")

    context.cleanup_dir(scratch)
    assert not os.path.exists(scratch)
    assert keeper.exists()

    # A parent this context did NOT create is never pruned, even when empty.
    foreign = tmp_path / "pre-existing"
    foreign.mkdir()
    other = RuntimeContext(tmpdir_prefix=str(foreign / "tmp-"))
    other.cleanup_dir(other.make_tmpdir())
    assert foreign.exists()


def test_close_reaps_all_tracked_scratch_dirs(tmp_path):
    context = RuntimeContext(tmpdir_prefix=str(tmp_path / "stage" / "tmp-"))
    dirs = [context.make_tmpdir() for _ in range(4)]
    context.close()
    assert not any(os.path.exists(d) for d in dirs)
    assert not (tmp_path / "stage").exists()


def test_close_is_idempotent(tmp_path):
    context = RuntimeContext(tmpdir_prefix=str(tmp_path / "stage" / "tmp-"))
    context.make_tmpdir()
    context.close()
    context.close()  # second close: nothing left, no error


def test_close_safe_under_concurrent_close(tmp_path):
    context = RuntimeContext(tmpdir_prefix=str(tmp_path / "stage" / "tmp-"))
    dirs = [context.make_tmpdir() for _ in range(32)]
    errors = []

    def closer():
        try:
            context.close()
        except Exception as exc:  # pragma: no cover - the assertion target
            errors.append(exc)

    threads = [threading.Thread(target=closer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert not any(os.path.exists(d) for d in dirs)


def test_child_contexts_share_teardown_tracking(tmp_path):
    parent = RuntimeContext(tmpdir_prefix=str(tmp_path / "stage" / "tmp-"))
    child = parent.child(cores=4)
    scratch = child.make_tmpdir()
    parent.close()
    assert not os.path.exists(scratch)
