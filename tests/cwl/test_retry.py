"""Unit tests for the shared retry loop (repro.cwl.retry).

The two properties the fault-tolerance layer rests on: schedules are a pure
function of (policy, job, attempt) — byte-identical across runs — and
retryability follows the engine-independent failure classification.
"""

from __future__ import annotations

import pytest

from repro.cwl.errors import (
    ExpressionError,
    InjectedFault,
    JobFailure,
    JobTimeout,
    UnsupportedRequirement,
    ValidationException,
)
from repro.cwl.faults import FaultPlan, FaultSpec
from repro.cwl.retry import (
    NEVER_RETRY_EXIT_CLASSES,
    RetryObservation,
    RetryPolicy,
    execute_with_retries,
)


# ------------------------------------------------------------- determinism

def test_schedule_is_byte_identical_across_instances():
    """Two policies with the same parameters agree delay for delay."""
    make = lambda: RetryPolicy(max_attempts=6, backoff_s=0.1, seed=99)
    first = make().schedule("tools/blast.cwl")
    second = make().schedule("tools/blast.cwl")
    assert first == second
    assert len(first) == 5  # one delay per retry, not per attempt


def test_schedule_varies_with_seed_job_and_attempt():
    policy = RetryPolicy(max_attempts=4, backoff_s=0.1, seed=1)
    other_seed = RetryPolicy(max_attempts=4, backoff_s=0.1, seed=2)
    assert policy.schedule("a") != other_seed.schedule("a")
    assert policy.schedule("a") != policy.schedule("b")
    fractions = {policy.jitter_fraction("a", n) for n in range(1, 5)}
    assert len(fractions) == 4  # attempt number is mixed into the hash
    assert all(0.0 <= f < 1.0 for f in fractions)


def test_backoff_is_exponential_and_capped():
    policy = RetryPolicy(max_attempts=10, backoff_s=1.0, multiplier=2.0,
                         max_backoff_s=4.0, jitter=0.0)
    assert policy.schedule("job") == (1.0, 2.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0)


def test_jitter_bounded_by_fraction():
    policy = RetryPolicy(max_attempts=2, backoff_s=1.0, jitter=0.5)
    delay = policy.delay_s("job", 1)
    assert 1.0 <= delay < 1.5


# ---------------------------------------------------------- retryability

def test_never_retry_exit_classes_are_final():
    policy = RetryPolicy(max_attempts=5, retryable_exit_codes=(1,),
                         retryable_errors=("ValueError",))
    assert NEVER_RETRY_EXIT_CLASSES == {"invalid", "unsupported",
                                        "expressionError"}
    assert not policy.retryable(ValidationException("bad doc"))
    assert not policy.retryable(UnsupportedRequirement("no docker"))
    assert not policy.retryable(ExpressionError("bad js"))


def test_timeout_is_always_retryable():
    assert RetryPolicy().retryable(JobTimeout("job", 5.0))


def test_exit_codes_gate_job_failures():
    policy = RetryPolicy(retryable_exit_codes=(75, 111))
    assert policy.retryable(JobFailure("job", 75))
    assert policy.retryable(InjectedFault("job", 111, 1))
    assert not policy.retryable(JobFailure("job", 1))


def test_error_class_names_gate_plain_exceptions():
    policy = RetryPolicy(retryable_errors=("OSError",))
    assert policy.retryable(OSError("fs hiccup"))
    assert not policy.retryable(RuntimeError("logic bug"))


# ------------------------------------------------------ execute_with_retries

def _no_sleep(_delay):
    pass


def test_retries_until_success_with_accounting():
    calls = []

    def flaky(attempt):
        calls.append(attempt)
        if attempt < 3:
            raise JobFailure("job", 11)
        return "ok"

    observation = RetryObservation()
    retried = []
    result = execute_with_retries(
        flaky, policy=RetryPolicy(max_attempts=4, retryable_exit_codes=(11,)),
        job="job", observation=observation,
        on_retry=lambda a, e, d: retried.append((a, d)), sleep=_no_sleep)
    assert result == "ok"
    assert calls == [1, 2, 3]
    assert observation.attempt == 3
    assert [a for a, _ in retried] == [1, 2]


def test_attempt_cap_is_enforced():
    calls = []

    def always_fails(attempt):
        calls.append(attempt)
        raise JobFailure("job", 11)

    with pytest.raises(JobFailure):
        execute_with_retries(
            always_fails, job="job", sleep=_no_sleep,
            policy=RetryPolicy(max_attempts=3, retryable_exit_codes=(11,)))
    assert calls == [1, 2, 3]


def test_non_retryable_failures_raise_immediately():
    calls = []

    def invalid(attempt):
        calls.append(attempt)
        raise ValidationException("bad document")

    with pytest.raises(ValidationException):
        execute_with_retries(
            invalid, job="job", sleep=_no_sleep,
            policy=RetryPolicy(max_attempts=5, retryable_errors=("ValueError",)))
    assert calls == [1]


def test_no_policy_means_single_attempt():
    calls = []

    def fails(attempt):
        calls.append(attempt)
        raise JobFailure("job", 11)

    with pytest.raises(JobFailure):
        execute_with_retries(fails, policy=None, job="job", sleep=_no_sleep)
    assert calls == [1]


def test_fault_plan_consulted_before_each_attempt():
    """Faults fire ahead of fn — the 'before any cache probe' invariant."""
    plan = FaultPlan(specs=(FaultSpec(job="job", exit_code=7, attempts=2),))
    ran = []

    def fn(attempt):
        ran.append(attempt)
        return "ok"

    result = execute_with_retries(
        fn, job="job", fault_plan=plan, sleep=_no_sleep,
        policy=RetryPolicy(max_attempts=3, retryable_exit_codes=(7,)))
    assert result == "ok"
    assert ran == [3]  # attempts 1-2 faulted before fn ever ran
    assert [(j, a) for j, a, _ in plan.injected] == [("job", 1), ("job", 2)]


def test_sleep_receives_the_deterministic_schedule():
    policy = RetryPolicy(max_attempts=3, backoff_s=0.2, seed=5,
                         retryable_exit_codes=(11,))
    slept = []

    def flaky(attempt):
        if attempt < 3:
            raise JobFailure("job", 11)
        return attempt

    execute_with_retries(flaky, policy=policy, job="job", sleep=slept.append)
    assert tuple(slept) == policy.schedule("job")[:2]
