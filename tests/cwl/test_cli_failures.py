"""CLI failure semantics: exit codes, partial outputs and cache hygiene.

A ``permanentFail`` tool must exit 1 on both CLIs, print no output object,
and — crucially — must not poison a ``--cachedir`` store: a failed run
stores nothing, a follow-up run re-fails (never replays a bogus success),
and successful runs still warm the cache normally.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cwl.cli import cwltool_main, toil_main
from repro.utils.yamlio import dump_yaml

FAILING_TOOL = {
    "cwlVersion": "v1.2",
    "class": "CommandLineTool",
    "baseCommand": ["bash", "-c", "echo made it half way; exit 3"],
    "inputs": {"tag": {"type": "string"}},
    "outputs": {"output": {"type": "stdout"}},
    "stdout": "half.txt",
}

SUCCEEDING_TOOL = {
    "cwlVersion": "v1.2",
    "class": "CommandLineTool",
    "baseCommand": "echo",
    "inputs": {"tag": {"type": "string", "inputBinding": {"position": 1}}},
    "outputs": {"output": {"type": "stdout"}},
    "stdout": "fine.txt",
}

PARTIAL_WORKFLOW = {
    "cwlVersion": "v1.2",
    "class": "Workflow",
    "inputs": {"tag": "string"},
    "outputs": {"final": {"type": "File", "outputSource": "explode/output"}},
    "steps": {
        "fine": {
            "run": dict(SUCCEEDING_TOOL),
            "in": {"tag": "tag"},
            "out": ["output"],
        },
        "explode": {
            "run": {
                "class": "CommandLineTool",
                "baseCommand": ["bash", "-c", "exit 9"],
                "inputs": {"source": {"type": "File", "inputBinding": {"position": 1}}},
                "outputs": {"output": {"type": "stdout"}},
                "stdout": "never.txt",
            },
            "in": {"source": "fine/output"},
            "out": ["output"],
        },
    },
}


@pytest.fixture(params=["cwltool", "toil"])
def cli(request, tmp_path):
    """Run either CLI with per-test isolation; returns (rc, stdout, stderr)."""
    def invoke(argv, capsys):
        if request.param == "toil":
            argv = ["--jobStore", str(tmp_path / "jobstore")] + list(argv)
            rc = toil_main(argv)
        else:
            rc = cwltool_main(argv)
        captured = capsys.readouterr()
        return rc, captured.out, captured.err

    invoke.name = request.param
    return invoke


def _write(tmp_path, name, doc):
    path = tmp_path / name
    dump_yaml(doc, path)
    return str(path)


def _cache_entries(cache_dir):
    entries = os.path.join(cache_dir, "entries")
    return sorted(os.listdir(entries)) if os.path.isdir(entries) else []


def test_permanent_fail_exits_1_and_prints_no_outputs(cli, tmp_path, capsys):
    doc = _write(tmp_path, "fail.cwl", FAILING_TOOL)
    rc, out, err = cli([doc, "--tag", "x"], capsys)
    assert rc == 1
    assert out.strip() == ""  # no output object on stdout
    assert "error" in err
    assert "exit code 3" in err


def test_permanent_fail_with_cachedir_exits_1_and_stores_nothing(cli, tmp_path, capsys):
    doc = _write(tmp_path, "fail.cwl", FAILING_TOOL)
    cache_dir = str(tmp_path / "cache")

    rc, _out, _err = cli(["--cachedir", cache_dir, doc, "--tag", "x"], capsys)
    assert rc == 1
    assert _cache_entries(cache_dir) == [], "a failed run must not poison the cache"

    # The follow-up warm run re-fails — it never replays a bogus success.
    rc, out, err = cli(["--cachedir", cache_dir, doc, "--tag", "x"], capsys)
    assert rc == 1
    assert out.strip() == ""
    assert "exit code 3" in err
    assert _cache_entries(cache_dir) == []


def test_success_with_cachedir_warms_and_replays_identically(cli, tmp_path, capsys):
    doc = _write(tmp_path, "fine.cwl", SUCCEEDING_TOOL)
    cache_dir = str(tmp_path / "cache")
    outdir_cold = str(tmp_path / "out-cold")
    outdir_warm = str(tmp_path / "out-warm")

    rc, cold_out, _ = cli(["--outdir", outdir_cold, "--cachedir", cache_dir, doc,
                           "--tag", "cached-run"], capsys)
    assert rc == 0
    assert len(_cache_entries(cache_dir)) == 1

    rc, warm_out, _ = cli(["--outdir", outdir_warm, "--cachedir", cache_dir, doc,
                           "--tag", "cached-run"], capsys)
    assert rc == 0
    cold = json.loads(cold_out)
    warm = json.loads(warm_out)
    assert cold["output"]["basename"] == warm["output"]["basename"] == "fine.txt"
    assert cold["output"]["size"] == warm["output"]["size"]
    with open(warm["output"]["path"]) as handle:
        assert handle.read() == "cached-run\n"
    # still exactly one entry: the warm run reused, it did not re-store
    assert len(_cache_entries(cache_dir)) == 1


def test_failed_and_successful_runs_share_a_store_without_interference(
        cli, tmp_path, capsys):
    failing = _write(tmp_path, "fail.cwl", FAILING_TOOL)
    fine = _write(tmp_path, "fine.cwl", SUCCEEDING_TOOL)
    cache_dir = str(tmp_path / "cache")

    assert cli(["--cachedir", cache_dir, fine, "--tag", "ok"], capsys)[0] == 0
    assert cli(["--cachedir", cache_dir, failing, "--tag", "ok"], capsys)[0] == 1
    # the failure neither removed nor corrupted the successful entry
    assert len(_cache_entries(cache_dir)) == 1
    rc, out, _ = cli(["--cachedir", cache_dir, fine, "--tag", "ok"], capsys)
    assert rc == 0
    assert json.loads(out)["output"]["basename"] == "fine.txt"


def test_workflow_partial_failure_exits_1_without_partial_outputs(
        cli, tmp_path, capsys):
    doc = _write(tmp_path, "partial.cwl", PARTIAL_WORKFLOW)
    outdir = str(tmp_path / "final-outputs")
    rc, out, err = cli(["--outdir", outdir, doc, "--tag", "upstream ran"], capsys)
    assert rc == 1
    assert out.strip() == ""
    assert "exit code 9" in err
    # no final outputs were staged for the failed run
    staged = os.listdir(outdir) if os.path.isdir(outdir) else []
    assert "never.txt" not in staged


def test_workflow_partial_failure_leaves_cache_unpoisoned(cli, tmp_path, capsys):
    """The completed upstream step may cache; the failed one must not."""
    doc = _write(tmp_path, "partial.cwl", PARTIAL_WORKFLOW)
    cache_dir = str(tmp_path / "cache")
    rc, _out, _err = cli(["--cachedir", cache_dir, doc, "--tag", "upstream ran"],
                         capsys)
    assert rc == 1
    entries = _cache_entries(cache_dir)
    assert len(entries) <= 1  # at most the successful upstream step

    # warm re-run still fails with the same failure class
    rc, out, err = cli(["--cachedir", cache_dir, doc, "--tag", "upstream ran"],
                       capsys)
    assert rc == 1
    assert out.strip() == ""
    assert "exit code 9" in err
