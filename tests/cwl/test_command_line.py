"""Tests for command-line construction from tools and job orders."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cwl.command_line import build_command_line, fill_in_defaults
from repro.cwl.loader import load_document, load_tool
from repro.cwl.types import build_file_value

RUNTIME = {"outdir": "/out", "tmpdir": "/tmp", "cores": 1, "ram": 1024}


def make_tool(**overrides):
    doc = {
        "cwlVersion": "v1.2",
        "class": "CommandLineTool",
        "baseCommand": "tool",
        "inputs": {},
        "outputs": {},
    }
    doc.update(overrides)
    return load_document(doc)


def test_echo_tool_positional_binding(cwl_dir):
    tool = load_tool(cwl_dir / "echo.cwl")
    parts = build_command_line(tool, {"message": "Hello, World!"}, RUNTIME)
    assert parts.argv == ["echo", "Hello, World!"]
    assert parts.stdout == "hello.txt"
    assert parts.stderr is None
    assert "Hello, World!" in parts.joined()


def test_prefix_with_separate_true_and_false():
    tool = make_tool(inputs={
        "alpha": {"type": "int", "inputBinding": {"prefix": "--alpha"}},
        "beta": {"type": "int", "inputBinding": {"prefix": "--beta=", "separate": False}},
    })
    parts = build_command_line(tool, {"alpha": 1, "beta": 2}, RUNTIME)
    assert parts.argv == ["tool", "--alpha", "1", "--beta=2"]


def test_positions_are_respected():
    tool = make_tool(inputs={
        "last": {"type": "string", "inputBinding": {"position": 5}},
        "first": {"type": "string", "inputBinding": {"position": 1}},
        "middle": {"type": "string", "inputBinding": {"position": 3}},
    })
    parts = build_command_line(tool, {"last": "c", "first": "a", "middle": "b"}, RUNTIME)
    assert parts.argv == ["tool", "a", "b", "c"]


def test_boolean_flag_only_emitted_when_true():
    tool = make_tool(inputs={"verbose": {"type": "boolean", "inputBinding": {"prefix": "--verbose"}}})
    assert build_command_line(tool, {"verbose": True}, RUNTIME).argv == ["tool", "--verbose"]
    assert build_command_line(tool, {"verbose": False}, RUNTIME).argv == ["tool"]


def test_optional_missing_input_contributes_nothing():
    tool = make_tool(inputs={"opt": {"type": "string?", "inputBinding": {"prefix": "--opt"}}})
    assert build_command_line(tool, {}, RUNTIME).argv == ["tool"]


def test_array_with_item_separator():
    tool = make_tool(inputs={
        "names": {"type": "string[]",
                  "inputBinding": {"prefix": "--names", "itemSeparator": ","}}})
    parts = build_command_line(tool, {"names": ["a", "b", "c"]}, RUNTIME)
    assert parts.argv == ["tool", "--names", "a,b,c"]


def test_array_without_item_separator_repeats_prefix():
    tool = make_tool(inputs={
        "include": {"type": "string[]", "inputBinding": {"prefix": "-I"}}})
    parts = build_command_line(tool, {"include": ["x", "y"]}, RUNTIME)
    assert parts.argv == ["tool", "-I", "x", "-I", "y"]


def test_empty_array_contributes_nothing():
    tool = make_tool(inputs={"xs": {"type": "string[]", "inputBinding": {"prefix": "-x"}}})
    assert build_command_line(tool, {"xs": []}, RUNTIME).argv == ["tool"]


def test_file_value_renders_as_path(tmp_path):
    data = tmp_path / "input.dat"
    data.write_text("x")
    tool = make_tool(inputs={"data": {"type": "File", "inputBinding": {"position": 1}}})
    parts = build_command_line(tool, {"data": build_file_value(str(data))}, RUNTIME)
    assert parts.argv == ["tool", str(data)]


def test_arguments_strings_and_bindings():
    tool = make_tool(
        arguments=["--fixed", {"prefix": "--derived", "valueFrom": "$(inputs.n)", "position": 4}],
        inputs={"n": {"type": "int", "inputBinding": {"position": 2}}},
    )
    parts = build_command_line(tool, {"n": 9}, RUNTIME)
    assert parts.argv == ["tool", "--fixed", "9", "--derived", "9"]


def test_value_from_overrides_value_with_self():
    tool = make_tool(inputs={
        "path": {"type": "string",
                 "inputBinding": {"position": 1, "valueFrom": "$(self.toUpperCase())"}}},
        requirements=[{"class": "InlineJavascriptRequirement"}])
    parts = build_command_line(tool, {"path": "abc"}, RUNTIME)
    assert parts.argv == ["tool", "ABC"]


def test_stdout_stderr_stdin_expressions():
    tool = make_tool(
        inputs={"name": {"type": "string"}},
        stdout="$(inputs.name).out",
        stderr="$(inputs.name).err",
        stdin="/data/$(inputs.name).in",
    )
    parts = build_command_line(tool, {"name": "job1"}, RUNTIME)
    assert parts.stdout == "job1.out"
    assert parts.stderr == "job1.err"
    assert parts.stdin == "/data/job1.in"


def test_default_stdout_name_for_stdout_outputs():
    tool = make_tool(outputs={"captured": "stdout"})
    parts = build_command_line(tool, {}, RUNTIME)
    assert parts.stdout is not None and parts.stdout.endswith(".stdout")


def test_env_var_requirement_expressions():
    tool = make_tool(
        inputs={"threads": {"type": "int"}},
        requirements=[{"class": "EnvVarRequirement",
                       "envDef": {"OMP_NUM_THREADS": "$(inputs.threads)", "MODE": "fast"}}],
    )
    parts = build_command_line(tool, {"threads": 16}, RUNTIME)
    assert parts.environment == {"OMP_NUM_THREADS": "16", "MODE": "fast"}


def test_base_command_list_and_numeric_rendering():
    tool = make_tool(baseCommand=["python3", "-m", "mytool"],
                     inputs={"rate": {"type": "float", "inputBinding": {"prefix": "--rate"}}})
    parts = build_command_line(tool, {"rate": 2.0}, RUNTIME)
    assert parts.argv == ["python3", "-m", "mytool", "--rate", "2"]


def test_fill_in_defaults():
    tool = make_tool(inputs={
        "required": "string",
        "with_default": {"type": "int", "default": 7},
        "optional": "string?",
    })
    filled = fill_in_defaults(tool.inputs, {"required": "x"})
    assert filled == {"required": "x", "with_default": 7, "optional": None}
    # Explicit values win over defaults.
    assert fill_in_defaults(tool.inputs, {"required": "x", "with_default": 1})["with_default"] == 1


# ---------------------------------------------------------------------- property


@given(positions=st.lists(st.integers(min_value=-5, max_value=20), min_size=1, max_size=8,
                          unique=True))
def test_property_argv_order_follows_positions(positions):
    """Property: bound inputs appear on the command line sorted by position."""
    inputs = {
        f"p{i}": {"type": "string", "inputBinding": {"position": position}}
        for i, position in enumerate(positions)
    }
    tool = make_tool(inputs=inputs)
    job = {f"p{i}": f"value{position}" for i, position in enumerate(positions)}
    argv = build_command_line(tool, job, RUNTIME).argv[1:]
    expected = [f"value{p}" for p in sorted(positions)]
    assert argv == expected


@given(values=st.lists(st.text(alphabet="abcXYZ019-_.", min_size=1, max_size=8), max_size=6))
def test_property_array_item_separator_round_trip(values):
    """Property: itemSeparator joining matches a straight join of stringified values."""
    tool = make_tool(inputs={"xs": {"type": "string[]",
                                    "inputBinding": {"prefix": "--xs", "itemSeparator": ","}}})
    argv = build_command_line(tool, {"xs": list(values)}, RUNTIME).argv
    if not values:
        assert argv == ["tool"]
    else:
        assert argv == ["tool", "--xs", ",".join(values)]
