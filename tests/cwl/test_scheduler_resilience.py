"""Scheduler robustness: hang guard, expansion bugs, partial execution.

The property under test: ``GraphScheduler.run()`` **always returns or
raises** — a worker that throws inside completion bookkeeping, a dynamic
expansion with malformed ids, or a dependency left unmet must surface as a
``WorkflowException`` with a diagnosis, never as an event-loop that waits
forever.
"""

from __future__ import annotations

import pytest

from repro.cwl.errors import WorkflowException
from repro.cwl.graph import GraphNode, WorkflowGraph
from repro.cwl.scheduler import (
    NODE_DONE,
    NODE_FAILED,
    NODE_SKIPPED,
    Expansion,
    GraphScheduler,
)

RUN_TIMEOUT_S = 30  # generous; the hang bug this guards against waits forever


def make_graph(edges, extra_nodes=()):
    """A WorkflowGraph from ``pred -> succ`` pairs of synthetic step nodes."""
    graph = WorkflowGraph()
    node_ids = list(dict.fromkeys(
        [n for edge in edges for n in edge] + list(extra_nodes)))
    for node_id in node_ids:
        graph.nodes[node_id] = GraphNode(id=node_id, kind="step",
                                         step=None, workflow=None)
        graph.predecessors[node_id] = []
    for pred, succ in edges:
        graph.predecessors[succ].append(pred)
    graph._finalise()
    return graph


def run_guarded(scheduler):
    """Run the scheduler on a watchdog thread so a hang fails, not blocks."""
    import threading

    outcome = {}

    def target():
        try:
            scheduler.run()
            outcome["ok"] = True
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            outcome["exc"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(RUN_TIMEOUT_S)
    assert not thread.is_alive(), "GraphScheduler.run() hung"
    if "exc" in outcome:
        raise outcome["exc"]


# ----------------------------------------------------------------- hang guard

@pytest.mark.parametrize("parallel", [False, True])
def test_bad_expansion_fails_the_run_instead_of_hanging(parallel):
    """A worker raising inside ``_apply_expansion`` must not block run().

    Returning an expansion that reuses an existing node id makes the
    *completion bookkeeping* (not the node body) raise; before the hang guard
    this left ``_pending > 0`` with no workers in flight and the parallel run
    loop waiting on its condition variable forever.
    """
    graph = make_graph([("a", "b")])

    def execute(node):
        if node.id == "a":
            return Expansion(nodes=[GraphNode(id="b", kind="step",
                                              step=None, workflow=None)])
        return None

    scheduler = GraphScheduler(graph, execute, parallel=parallel, max_workers=2)
    with pytest.raises(WorkflowException, match="duplicate dynamic node id"):
        run_guarded(scheduler)


@pytest.mark.parametrize("parallel", [False, True])
def test_drain_check_reports_stalled_nodes_with_diagnosis(parallel):
    """An expansion whose nodes can never run is reported, not awaited.

    The stall report must name the stuck node, its indegree and the unmet
    dependency so the failure is debuggable from the message alone.
    """
    graph = make_graph([("a", "b")])

    def execute(node):
        if node.id == "a":
            # Two dynamic nodes in a runtime dependency cycle: neither can
            # ever become ready, so the run would otherwise wait forever.
            shards = [GraphNode(id=f"a/shard-{i}", kind="step",
                                step=None, workflow=None) for i in range(2)]
            return Expansion(nodes=shards,
                             preds={"a/shard-0": ["a/shard-1"],
                                    "a/shard-1": ["a/shard-0"]})
        return None

    scheduler = GraphScheduler(graph, execute, parallel=parallel, max_workers=2)
    with pytest.raises(WorkflowException) as excinfo:
        run_guarded(scheduler)
    message = str(excinfo.value)
    assert "workflow stalled" in message
    assert "a/shard-0" in message          # the stalled node id
    assert "indegree" in message           # its dependency count
    assert "unmet: a/shard-1" in message   # the unmet predecessor


# ------------------------------------------------------------- on_error modes

def diamond():
    """a -> (left, right) -> sink, plus an independent island."""
    return make_graph([("a", "left"), ("a", "right"),
                       ("left", "sink"), ("right", "sink")],
                      extra_nodes=["island"])


@pytest.mark.parametrize("parallel", [False, True])
def test_on_error_stop_raises_first_failure(parallel):
    graph = diamond()

    def execute(node):
        if node.id == "left":
            raise WorkflowException("left exploded")
        return None

    scheduler = GraphScheduler(graph, execute, parallel=parallel, max_workers=2)
    with pytest.raises(WorkflowException, match="left exploded"):
        run_guarded(scheduler)
    assert scheduler.states["left"] == NODE_FAILED


@pytest.mark.parametrize("parallel", [False, True])
def test_on_error_continue_poisons_only_transitive_successors(parallel):
    graph = diamond()
    ran = []

    def execute(node):
        ran.append(node.id)
        if node.id == "left":
            raise WorkflowException("left exploded")
        return None

    scheduler = GraphScheduler(graph, execute, parallel=parallel,
                               max_workers=2, on_error="continue")
    run_guarded(scheduler)  # does not raise
    assert set(scheduler.failures) == {"left"}
    assert scheduler.states["left"] == NODE_FAILED
    assert scheduler.states["sink"] == NODE_SKIPPED
    assert scheduler.states["right"] == NODE_DONE
    assert scheduler.states["island"] == NODE_DONE
    assert "sink" not in ran  # poisoned nodes never execute


def test_on_error_validated():
    with pytest.raises(ValueError, match="on_error"):
        GraphScheduler(make_graph([("a", "b")]), lambda node: None,
                       on_error="retry")


def test_journal_records_every_transition(tmp_path):
    from repro.cwl.journal import RunJournal, node_states, read_journal

    journal = RunJournal(str(tmp_path / "journal.jsonl"))
    graph = diamond()

    def execute(node):
        if node.id == "left":
            raise WorkflowException("left exploded")
        return None

    scheduler = GraphScheduler(graph, execute, on_error="continue",
                               journal=journal)
    run_guarded(scheduler)
    journal.close()
    states = node_states(read_journal(str(tmp_path)))
    assert states == {"a": "done", "left": "failed", "right": "done",
                      "sink": "skipped", "island": "done"}
