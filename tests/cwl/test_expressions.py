"""Tests for parameter references and the expression evaluator."""

from __future__ import annotations

import pytest

from repro.cwl.errors import ExpressionError
from repro.cwl.expressions import ExpressionEvaluator, needs_expression_evaluation
from repro.cwl.expressions.paramrefs import (
    find_expressions,
    is_simple_parameter_reference,
    resolve_parameter_reference,
)


CONTEXT = {
    "inputs": {
        "message": "hello world",
        "size": 1024,
        "flag": True,
        "image": {"class": "File", "basename": "photo.png", "path": "/data/photo.png",
                  "nameroot": "photo"},
        "values": [10, 20, 30],
    },
    "runtime": {"cores": 4, "outdir": "/out"},
    "self": None,
}


# ----------------------------------------------------------------- reference scanning


def test_find_expressions_paren_and_brace():
    found = find_expressions("x $(inputs.a) y ${ return 1; } z")
    assert [f.kind for f in found] == ["paren", "brace"]
    assert found[0].body == "inputs.a"
    assert "return 1;" in found[1].body


def test_find_expressions_nested_parens_and_strings():
    found = find_expressions("$(inputs.file.basename.split('.')[0])")
    assert len(found) == 1
    assert found[0].body == "inputs.file.basename.split('.')[0]"


def test_find_expressions_escaped_dollar_ignored():
    assert find_expressions(r"costs \$(5)") == []


def test_find_expressions_unterminated_raises():
    with pytest.raises(ExpressionError):
        find_expressions("$(inputs.a")


def test_is_simple_parameter_reference():
    assert is_simple_parameter_reference("inputs.message")
    assert is_simple_parameter_reference("inputs.image.basename")
    assert is_simple_parameter_reference("inputs.values[0]")
    assert is_simple_parameter_reference("inputs['message']")
    assert not is_simple_parameter_reference("inputs.message.split(' ')")
    assert not is_simple_parameter_reference("1 + 2")


@pytest.mark.parametrize("body,expected", [
    ("inputs.message", "hello world"),
    ("inputs.size", 1024),
    ("inputs.flag", True),
    ("inputs.image.basename", "photo.png"),
    ("inputs.values[1]", 20),
    ("inputs['image']['nameroot']", "photo"),
    ("runtime.cores", 4),
    ("inputs.message.length", 11),
    ("inputs.missing", None),
    ("inputs.image.missing_attribute", None),
])
def test_resolve_parameter_reference(body, expected):
    assert resolve_parameter_reference(body, CONTEXT) == expected


def test_resolve_unknown_root_raises():
    with pytest.raises(ExpressionError):
        resolve_parameter_reference("environment.PATH", CONTEXT)


# ----------------------------------------------------------------------- evaluator


def test_whole_string_reference_preserves_type():
    evaluator = ExpressionEvaluator()
    assert evaluator.evaluate("$(inputs.size)", CONTEXT) == 1024
    assert evaluator.evaluate("$(inputs.flag)", CONTEXT) is True
    assert evaluator.evaluate("$(inputs.values)", CONTEXT) == [10, 20, 30]


def test_interpolation_stringifies():
    evaluator = ExpressionEvaluator()
    result = evaluator.evaluate("--size=$(inputs.size) --cores=$(runtime.cores)", CONTEXT)
    assert result == "--size=1024 --cores=4"


def test_interpolation_of_booleans_and_null():
    evaluator = ExpressionEvaluator()
    assert evaluator.evaluate("flag=$(inputs.flag) missing=$(inputs.missing)", CONTEXT) == \
        "flag=true missing=null"


def test_plain_strings_pass_through():
    evaluator = ExpressionEvaluator()
    assert evaluator.evaluate("no expressions here", CONTEXT) == "no expressions here"
    assert evaluator.evaluate(42, CONTEXT) == 42
    assert evaluator.evaluate(None, CONTEXT) is None


def test_js_expression_inside_reference():
    evaluator = ExpressionEvaluator()
    assert evaluator.evaluate("$(inputs.message.toUpperCase())", CONTEXT) == "HELLO WORLD"
    assert evaluator.evaluate("$(inputs.size / 2)", CONTEXT) == 512


def test_brace_function_body():
    evaluator = ExpressionEvaluator()
    assert evaluator.evaluate("${ return inputs.values.length * 2; }", CONTEXT) == 6


def test_js_disabled_rejects_complex_expressions():
    evaluator = ExpressionEvaluator(js_enabled=False)
    # Simple references still work without InlineJavascriptRequirement.
    assert evaluator.evaluate("$(inputs.size)", CONTEXT) == 1024
    with pytest.raises(ExpressionError):
        evaluator.evaluate("$(inputs.size + 1)", CONTEXT)
    with pytest.raises(ExpressionError):
        evaluator.evaluate("${ return 1; }", CONTEXT)


def test_expression_lib_available():
    evaluator = ExpressionEvaluator(expression_lib=["function triple(x) { return x * 3; }"])
    assert evaluator.evaluate("$(triple(inputs.size))", CONTEXT) == 3072


def test_engine_build_counting_cached_vs_uncached():
    uncached = ExpressionEvaluator(cache_engine=False)
    for _ in range(3):
        uncached.evaluate("$(inputs.size + 1)", CONTEXT)
    assert uncached.engine_builds == 3

    cached = ExpressionEvaluator(cache_engine=True)
    for _ in range(3):
        cached.evaluate("$(inputs.size + 1)", CONTEXT)
    assert cached.engine_builds == 1


def test_cached_engine_rebuilds_for_new_context():
    cached = ExpressionEvaluator(cache_engine=True)
    cached.evaluate("$(inputs.size + 1)", CONTEXT)
    other_context = {"inputs": {"size": 1}, "runtime": {}, "self": None}
    assert cached.evaluate("$(inputs.size + 1)", other_context) == 2
    assert cached.engine_builds == 2


def test_evaluate_structure_recurses():
    evaluator = ExpressionEvaluator()
    structure = {"args": ["$(inputs.size)", {"nested": "$(runtime.cores)"}], "plain": 1}
    assert evaluator.evaluate_structure(structure, CONTEXT) == \
        {"args": [1024, {"nested": 4}], "plain": 1}


def test_needs_expression_evaluation():
    assert needs_expression_evaluation("$(inputs.x)")
    assert needs_expression_evaluation("prefix ${ return 1; }")
    assert not needs_expression_evaluation("plain")
    assert not needs_expression_evaluation(5)
