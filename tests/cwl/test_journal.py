"""Unit tests for the append-only run journal (repro.cwl.journal)."""

from __future__ import annotations

import json
import os

import pytest

from repro.cwl.journal import (
    RunJournal,
    document_fingerprint,
    journal_header,
    journal_path,
    node_states,
    open_run_dir,
    read_journal,
    run_cache_dir,
)


@pytest.fixture
def process_doc(tmp_path):
    path = tmp_path / "tool.cwl"
    path.write_text('{"class": "CommandLineTool"}\n')
    return str(path)


def test_open_run_dir_writes_header_and_cache_dir(tmp_path, process_doc):
    run_dir = str(tmp_path / "run")
    with open_run_dir(run_dir, process_path=process_doc,
                      job_order={"x": 1}, engine="toil") as journal:
        journal.node_state("step1", "done")
    assert os.path.isdir(run_cache_dir(run_dir))
    records = read_journal(run_dir)
    header = journal_header(records)
    assert header["process"] == os.path.abspath(process_doc)
    assert header["fingerprint"] == document_fingerprint(process_doc)
    assert header["job_order"] == {"x": 1}
    assert header["engine"] == "toil"
    assert node_states(records) == {"step1": "done"}


def test_records_survive_without_close_and_later_states_win(tmp_path):
    journal = RunJournal(str(tmp_path / "journal.jsonl"))
    journal.node_state("a", "running")
    journal.node_state("a", "done")
    journal.node_state("b", "running")
    # No close(): every record was flushed at append time (crash safety).
    records = read_journal(str(tmp_path))
    assert node_states(records) == {"a": "done", "b": "running"}
    journal.close()
    journal.record("after", x=1)  # append after close is a silent no-op
    assert len(read_journal(str(tmp_path))) == 3


def test_torn_final_line_is_dropped(tmp_path, process_doc):
    run_dir = str(tmp_path / "run")
    open_run_dir(run_dir, process_path=process_doc, job_order={},
                 engine="reference").close()
    with open(journal_path(run_dir), "a", encoding="utf-8") as handle:
        handle.write('{"kind": "node", "node": "a", "sta')  # crash mid-append
    records = read_journal(run_dir)
    assert [r["kind"] for r in records] == ["header"]


def test_torn_middle_line_raises(tmp_path):
    path = journal_path(str(tmp_path))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"kind": "header"}) + "\n")
        handle.write('{"torn": \n')
        handle.write(json.dumps({"kind": "node", "node": "a"}) + "\n")
    with pytest.raises(ValueError, match="corrupt journal record"):
        read_journal(str(tmp_path))


def test_journal_header_requires_header_record(tmp_path):
    with pytest.raises(ValueError, match="no header"):
        journal_header([{"kind": "node", "node": "a"}])


def test_document_fingerprint_tracks_content(tmp_path):
    path = tmp_path / "doc.cwl"
    path.write_text("one")
    first = document_fingerprint(str(path))
    assert document_fingerprint(str(path)) == first
    path.write_text("two")
    assert document_fingerprint(str(path)) != first


def test_second_header_wins_for_resumed_runs(tmp_path, process_doc):
    run_dir = str(tmp_path / "run")
    open_run_dir(run_dir, process_path=process_doc, job_order={},
                 engine="reference").close()
    open_run_dir(run_dir, process_path=process_doc, job_order={},
                 engine="toil").close()
    header = journal_header(read_journal(run_dir))
    assert header["engine"] == "toil"
