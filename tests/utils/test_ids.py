"""Tests for repro.utils.ids."""

from __future__ import annotations

import threading

from repro.utils.ids import RunIdGenerator, make_id


def test_make_id_has_prefix_and_uniqueness():
    first = make_id("task")
    second = make_id("task")
    assert first.startswith("task-")
    assert first != second


def test_make_id_embeds_pid():
    import os

    assert str(os.getpid()) in make_id("x")


def test_run_id_generator_monotonic():
    gen = RunIdGenerator()
    values = [gen.next() for _ in range(10)]
    assert values == list(range(10))


def test_run_id_generator_custom_start():
    gen = RunIdGenerator(start=100)
    assert gen.next() == 100
    assert gen.next() == 101


def test_run_id_generator_peek_does_not_consume():
    gen = RunIdGenerator()
    assert gen.peek() == 0
    assert gen.next() == 0
    assert gen.peek() == 1


def test_run_id_generator_thread_safety():
    gen = RunIdGenerator()
    results = []
    lock = threading.Lock()

    def worker():
        local = [gen.next() for _ in range(200)]
        with lock:
            results.extend(local)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(results) == 8 * 200
    assert len(set(results)) == len(results), "ids must never repeat under concurrency"
