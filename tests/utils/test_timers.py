"""Tests for repro.utils.timers."""

from __future__ import annotations

import time

import pytest

from repro.utils.timers import Stopwatch, wall_time


def test_wall_time_is_monotonic():
    a = wall_time()
    b = wall_time()
    assert b >= a


def test_stopwatch_total_and_laps():
    sw = Stopwatch().start()
    time.sleep(0.01)
    lap1 = sw.lap("first")
    time.sleep(0.01)
    lap2 = sw.lap("second")
    total = sw.stop()
    assert lap1 > 0 and lap2 > 0
    assert total >= lap1 + lap2 - 1e-6
    assert sw.lap_order == ["first", "second"]


def test_stopwatch_lap_accumulates_repeated_names():
    sw = Stopwatch().start()
    sw.lap("phase")
    sw.lap("phase")
    assert sw.lap_order == ["phase"]
    assert sw.laps["phase"] >= 0


def test_stopwatch_requires_start():
    sw = Stopwatch()
    with pytest.raises(RuntimeError):
        sw.lap("x")
    with pytest.raises(RuntimeError):
        sw.stop()


def test_stopwatch_elapsed_without_stop():
    sw = Stopwatch()
    assert sw.elapsed == 0.0
    sw.start()
    time.sleep(0.005)
    assert sw.elapsed > 0


def test_stopwatch_restart_clears_laps():
    sw = Stopwatch().start()
    sw.lap("a")
    sw.stop()
    sw.start()
    assert sw.laps == {}
    assert sw.lap_order == []
