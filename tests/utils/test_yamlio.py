"""Tests for repro.utils.yamlio."""

from __future__ import annotations

import pytest

from repro.utils.yamlio import dump_json, dump_yaml, load_yaml, load_yaml_file


def test_load_yaml_parses_mappings_and_lists():
    doc = load_yaml("a: 1\nb:\n  - x\n  - y\n")
    assert doc == {"a": 1, "b": ["x", "y"]}


def test_load_yaml_accepts_json():
    assert load_yaml('{"a": [1, 2]}') == {"a": [1, 2]}


def test_load_yaml_file_missing_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_yaml_file(tmp_path / "missing.yml")


def test_yaml_round_trip_through_file(tmp_path):
    payload = {"z": 1, "a": {"nested": [1, 2, 3]}, "flag": True}
    path = tmp_path / "doc.yml"
    dump_yaml(payload, path)
    assert load_yaml_file(path) == payload


def test_dump_yaml_sorts_keys():
    text = dump_yaml({"b": 1, "a": 2})
    assert text.index("a:") < text.index("b:")


def test_dump_json_writes_file_and_sorts_keys(tmp_path):
    path = tmp_path / "out.json"
    text = dump_json({"b": 1, "a": 2}, path)
    assert path.read_text() == text
    assert text.index('"a"') < text.index('"b"')


def test_dump_json_stringifies_unknown_types():
    class Odd:
        def __str__(self):
            return "odd-value"

    assert "odd-value" in dump_json({"x": Odd()})
