"""Tests for repro.utils.hashing."""

from __future__ import annotations

import hashlib

from hypothesis import given, strategies as st

from repro.utils.hashing import hash_bytes, hash_file, hash_obj


def test_hash_bytes_format_and_value():
    data = b"hello world"
    expected = hashlib.sha1(data).hexdigest()
    assert hash_bytes(data) == f"sha1${expected}"


def test_hash_bytes_other_algorithm():
    assert hash_bytes(b"x", algorithm="md5").startswith("md5$")


def test_hash_file_matches_hash_bytes(tmp_path):
    path = tmp_path / "data.bin"
    payload = b"a" * 100_000 + b"b" * 3
    path.write_bytes(payload)
    assert hash_file(path) == hash_bytes(payload)


def test_hash_obj_dict_order_independent():
    a = {"x": 1, "y": [1, 2, {"z": 3}]}
    b = {"y": [1, 2, {"z": 3}], "x": 1}
    assert hash_obj(a) == hash_obj(b)


def test_hash_obj_differs_for_different_values():
    assert hash_obj({"x": 1}) != hash_obj({"x": 2})


def test_hash_obj_handles_unpicklable_values():
    # A lambda cannot be pickled by the stdlib pickler; repr fallback must kick in.
    value = {"fn": lambda x: x}
    assert isinstance(hash_obj(value), str)


@given(st.dictionaries(st.text(max_size=8),
                       st.one_of(st.integers(), st.text(max_size=8), st.booleans()),
                       max_size=6))
def test_hash_obj_is_deterministic(payload):
    assert hash_obj(payload) == hash_obj(dict(payload))


@given(st.lists(st.integers(), max_size=10))
def test_hash_obj_lists_vs_tuples_equal_canonicalisation(items):
    # Lists and tuples canonicalise identically (documented behaviour).
    assert hash_obj(items) == hash_obj(tuple(items))
